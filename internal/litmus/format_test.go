package litmus

import (
	"reflect"
	"strings"
	"testing"
)

// TestEncodeDecodeRoundTrip: Decode(Encode(t)) is the identity over the
// curated corpus and a generated sample.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := ConformanceCorpus()
	tests = append(tests, Generate(GenOptions{Seed: 42, Count: 50})...)
	for _, orig := range tests {
		enc := Encode(orig)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode failed: %v\n%s", orig.Name, err, enc)
		}
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("%s: round trip changed the test:\norig %+v\ngot  %+v", orig.Name, orig, got)
		}
		if re := Encode(got); re != enc {
			t.Fatalf("%s: re-encode differs:\n%s\nvs\n%s", orig.Name, enc, re)
		}
	}
}

// TestCorpusRoundTrip: a whole corpus survives EncodeCorpus/DecodeCorpus.
func TestCorpusRoundTrip(t *testing.T) {
	orig := ConformanceCorpus()
	got, err := DecodeCorpus(EncodeCorpus(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("corpus round trip changed a test")
	}
}

// TestDecodeRejects pins the parser's error cases.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no-header", "cores 2 addrs 2 layout split\np0: st0\np1: st1\n"},
		{"bad-layout", "litmus x\ncores 2 addrs 2 layout diagonal\np0: st0\np1: st1\n"},
		{"core-count-mismatch", "litmus x\ncores 3 addrs 2 layout split\np0: st0\np1: st1\n"},
		{"bad-label", "litmus x\ncores 2 addrs 2 layout split\np1: st0\np0: st1\n"},
		{"unknown-op", "litmus x\ncores 2 addrs 2 layout split\np0: ld0\np1: st1\n"},
		{"slot-out-of-range", "litmus x\ncores 2 addrs 2 layout split\np0: st7\np1: st1\n"},
		{"zero-value", "litmus x\ncores 2 addrs 2 layout split\np0: st0=0\np1: st1\n"},
		{"barrier-with-operand", "litmus x\ncores 1 addrs 1 layout split\np0: fe0\n"},
		{"duplicate-name", "litmus x\ncores 1 addrs 1 layout split\np0: st0\n\nlitmus x\ncores 1 addrs 1 layout split\np0: st0\n"},
		{"bad-name", "litmus a/b\ncores 1 addrs 1 layout split\np0: st0\n"},
		{"empty-program", "litmus x\ncores 1 addrs 1 layout split\np0:\n"},
		{"duplicate-cores-line", "litmus x\ncores 1 addrs 1 layout split\ncores 1 addrs 1 layout split\np0: st0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeCorpus(tc.in); err == nil {
				t.Fatalf("accepted malformed corpus:\n%s", tc.in)
			}
		})
	}
}

// TestDecodeSkipsCommentsAndBlanks: the file format tolerates annotation.
func TestDecodeSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a regression corpus\n\nlitmus x\n# two cores\ncores 2 addrs 2 layout split\np0: st0 fe st1\n\np1: st0=5\n"
	tests, err := DecodeCorpus(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 1 || tests[0].Name != "x" || len(tests[0].Cores) != 2 {
		t.Fatalf("parsed %+v", tests)
	}
}

// FuzzLitmusDecode: decoding arbitrary bytes must never panic, and any
// input that decodes must round-trip exactly (decode–encode identity).
func FuzzLitmusDecode(f *testing.F) {
	for _, t := range ConformanceCorpus() {
		f.Add(Encode(t))
	}
	for _, t := range Generate(GenOptions{Seed: 99, Count: 20}) {
		f.Add(Encode(t))
	}
	f.Add("litmus x\ncores 2 addrs 2 layout split\np0: st0\np1: st1=5\n")
	f.Add("litmus x\ncores 1 addrs 1 layout packed\np0: rmw0=18446744073709551615\n")
	f.Add("# comment only\n")
	f.Add("litmus \x00\ncores 1 addrs 1 layout split\np0: st0")
	f.Fuzz(func(t *testing.T, data string) {
		t1, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(t1)
		t2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("decode–encode not the identity:\n%+v\nvs\n%+v", t1, t2)
		}
		if re := Encode(t2); re != enc {
			t.Fatalf("encoding not canonical:\n%q\nvs\n%q", enc, re)
		}
		if strings.Contains(enc, "\x00") {
			t.Fatalf("canonical encoding contains NUL: %q", enc)
		}
	})
}
