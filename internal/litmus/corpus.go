package litmus

// conformanceCorpusText is the curated built-in corpus: the classic persist
// litmus shapes (MP, SB, 2+2W), the paper's region-barrier idiom, the two
// persistChecker edge cases the oracle regressed on historically
// (coalescing subsumption, idempotent re-accept), and the asymmetric
// shapes that expose the litmus-only seeded bugs — same-word coalescing
// under multicore (cache-coalesce-stale-word) and a barrier armed while
// the sibling core's queue is already dry
// (pipeline-barrier-snapshot-cross-core).
const conformanceCorpusText = `
# Message passing: the flag (slot 1) must never persist before the data
# (slot 0) it publishes.
litmus mp-fence
cores 2 addrs 2 layout split
p0: st0 fe st1
p1: st0=5 fe st1=5

# Message passing through the high-level sync boundary (the paper's
# region-barrier idiom: the boundary stalls commit until the snapshot
# drains).
litmus mp-sync
cores 2 addrs 2 layout split
p0: st0 sy st1
p1: st1=9

# Store buffering: no ordering between the cores' slots at all — every
# interleaving of the two singleton chains is allowed.
litmus sb
cores 2 addrs 2 layout split
p0: st0
p1: st1

# 2+2W with fences: the shape whose forbidden outcome (both second
# stores win) only an exact interleaving solver rules out — per-address
# reasoning admits it.
litmus 2p2w-fence
cores 2 addrs 2 layout split
p0: st0 fe st1
p1: st1=7 fe st0=7

# 2+2W without fences: same-address program order still constrains each
# slot's chain, but the cross-slot cycle is legal.
litmus 2p2w-relaxed
cores 2 addrs 2 layout split
p0: st0 st1
p1: st1=7 st0=7

# Coalescing subsumption: two same-word stores back to back coalesce in
# the write buffer, so only the newer value may reach the accept stream —
# and the final image must hold it (regression: persistChecker once
# flagged the subsumed older store as lost).
litmus coalesce-subsume
cores 2 addrs 2 layout split
p0: st0 st0 fe
p1: st1

# Idempotent re-accept: the same value written twice with a fence
# between; the device may re-accept the identical word without the
# checker inventing a missing persist (regression).
litmus idempotent-reaccept
cores 2 addrs 2 layout split
p0: st0=5 fe st0=5 fe
p1: st1

# Packed layout: all slots share one cache line, so every persist rides
# the same line through WCB touch / WPQ scan-coalesce paths.
litmus packed-mp
cores 2 addrs 2 layout packed
p0: st0 fe st1
p1: st1=3

# Packed same-word chain: consecutive same-word stores on a shared line.
# The final image must hold each chain's newest value — the shape that
# convicts cache-coalesce-stale-word.
litmus packed-chain
cores 2 addrs 2 layout packed
p0: st0 st0 st1
p1: st1=9 st1=10

# Split same-word chain: the single-line variant of the same conviction.
litmus split-chain
cores 2 addrs 2 layout split
p0: st0 st0 fe
p1: st0=11 st1

# Asymmetric sync: core 0 arms a region boundary over two in-flight
# stores while core 1's persist queue is already dry — the shape that
# convicts pipeline-barrier-snapshot-cross-core (a barrier released
# against the wrong core's queue completes before its own stores drain).
litmus lone-sync
cores 2 addrs 2 layout split
p0: st0 st1 sy st0=21
p1: st1=22

# The same asymmetry with the victim in the middle of the core set.
litmus mid-sync
cores 3 addrs 3 layout split
p0: st0
p1: st1 st2 sy st1=31
p2: st2=32

# RMW publication: the atomic's sync boundary orders the data store
# before the RMW's own persist.
litmus rmw-publish
cores 2 addrs 2 layout split
p0: st0 rmw1
p1: rmw1=5

# RMW chain on one word: two atomics accumulate; each boundary drains
# the previous value first, so the slot's chain is strictly ordered.
litmus rmw-chain
cores 2 addrs 2 layout split
p0: st0=4 rmw0=2 rmw0=2
p1: st1=3

# Four cores, three slots: the widest generator shape, pinning the
# round-robin write-buffer accept loop and the step-order shuffle.
litmus quad
cores 4 addrs 3 layout split
p0: st0 fe st1
p1: st1=40 fe st2=40
p2: st2=41 fe st0=41
p3: sy st2=42
`

// ConformanceCorpus returns the curated built-in litmus tests. It panics
// on decode or compile errors — the corpus is a compile-time constant and
// the package tests replay it end to end.
func ConformanceCorpus() []*Test {
	tests, err := DecodeCorpus(conformanceCorpusText)
	if err != nil {
		panic("litmus: built-in corpus invalid: " + err.Error())
	}
	for _, t := range tests {
		if _, err := Compile(t); err != nil {
			panic("litmus: built-in corpus does not compile: " + err.Error())
		}
	}
	return tests
}
