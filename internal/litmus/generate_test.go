package litmus

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic: one seed, one corpus — byte for byte.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenOptions{Seed: 7, Count: 40})
	b := Generate(GenOptions{Seed: 7, Count: 40})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := Generate(GenOptions{Seed: 8, Count: 40})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
	// Prefix stability: the i-th test depends only on (seed, i), so a
	// longer corpus extends a shorter one instead of reshuffling it.
	long := Generate(GenOptions{Seed: 7, Count: 60})
	if !reflect.DeepEqual(a, long[:40]) {
		t.Fatal("growing the corpus reshuffled earlier tests")
	}
}

// TestGenerateShapes: every generated test compiles, solves, and stays
// inside the advertised shape envelope (2–4 cores, 2–3 slots, ≥1 store).
func TestGenerateShapes(t *testing.T) {
	tests := Generate(GenOptions{Seed: 3, Count: 120})
	if len(tests) != 120 {
		t.Fatalf("generated %d tests, want 120", len(tests))
	}
	coreCounts := map[int]int{}
	layouts := map[string]int{}
	for _, lt := range tests {
		if len(lt.Cores) < 2 || len(lt.Cores) > 4 {
			t.Fatalf("%s: %d cores outside 2–4", lt.Name, len(lt.Cores))
		}
		if lt.NAddrs < 2 || lt.NAddrs > 3 {
			t.Fatalf("%s: %d address slots outside 2–3", lt.Name, lt.NAddrs)
		}
		coreCounts[len(lt.Cores)]++
		layouts[lt.Layout]++
		c, err := Compile(lt)
		if err != nil {
			t.Fatalf("%s does not compile: %v", lt.Name, err)
		}
		stores := 0
		for _, cp := range c.Model.Cores {
			stores += len(cp.Stores)
		}
		if stores == 0 {
			t.Fatalf("%s has no stores; it cannot exercise the persist path", lt.Name)
		}
		if len(c.Model.FinalOutcomes()) == 0 {
			t.Fatalf("%s solved to an empty final set", lt.Name)
		}
	}
	for n := 2; n <= 4; n++ {
		if coreCounts[n] == 0 {
			t.Errorf("no generated test has %d cores", n)
		}
	}
	if layouts[LayoutSplit] == 0 || layouts[LayoutPacked] == 0 {
		t.Errorf("layout mix degenerate: %v", layouts)
	}
}

// TestGenerateFixedCores: the -cores override pins the width.
func TestGenerateFixedCores(t *testing.T) {
	for _, lt := range Generate(GenOptions{Seed: 5, Count: 20, Cores: 3}) {
		if len(lt.Cores) != 3 {
			t.Fatalf("%s: %d cores, want 3", lt.Name, len(lt.Cores))
		}
	}
}

// TestCompileValueModel pins the compiler's value assignment: distinct
// power-of-two autos, RMW accumulating the core's own functional view.
func TestCompileValueModel(t *testing.T) {
	lt, err := Decode("litmus v\ncores 2 addrs 2 layout split\np0: st0 rmw0=2 st1\np1: st0=9\n")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(lt)
	if err != nil {
		t.Fatal(err)
	}
	// p0: st0 auto = 1<<0 = 1; rmw0 adds 2 onto the core's view (1) = 3;
	// st1 auto = 1<<2 = 4. p1: explicit 9.
	p0 := c.Model.Cores[0].Stores
	want := []uint64{1, 3, 4}
	for i, w := range want {
		if p0[i].Val != w {
			t.Fatalf("p0 store %d value %#x, want %#x (stores %+v)", i, p0[i].Val, w, p0)
		}
	}
	if got := c.Model.Cores[1].Stores[0].Val; got != 9 {
		t.Fatalf("p1 explicit value %#x, want 9", got)
	}
	// The RMW contributes a barrier immediately before its own store.
	if got := c.Model.Cores[0].Barriers; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("p0 barriers %v, want [1]", got)
	}
	// Chains mirror per-(core, slot) store values in program order.
	if got := c.Chains[0][0]; !reflect.DeepEqual(got, []uint64{1, 3}) {
		t.Fatalf("p0 slot0 chain %v", got)
	}
}

// TestSlotAddrLayouts: packed slots share a line, split slots do not.
func TestSlotAddrLayouts(t *testing.T) {
	packed := &Test{Layout: LayoutPacked}
	split := &Test{Layout: LayoutSplit}
	if d := packed.SlotAddr(1) - packed.SlotAddr(0); d != 8 {
		t.Fatalf("packed slot stride %d, want 8", d)
	}
	if d := split.SlotAddr(1) - split.SlotAddr(0); d != 64 {
		t.Fatalf("split slot stride %d, want 64", d)
	}
}
