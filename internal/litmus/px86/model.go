// Package px86 is the axiomatic persistency model behind the litmus
// conformance engine ("Taming x86-TSO Persistency", Khyzha & Lahav,
// adapted to PPA's region/barrier primitives).
//
// The model describes which NVM states a small concurrent program may
// leave behind. Each core issues a program-order sequence of stores
// interleaved with persist barriers (PPA region boundaries: fences, sync
// primitives, and the implicit barrier an RMW carries). Two stores s_i,
// s_j of the same core with i < j are *persist-ordered* (s_i ⊑ s_j) iff
//
//   - they write the same address (per-location persist order: the
//     store buffer and the persist write buffer drain same-address
//     writes of one core in program order and may coalesce them, but
//     never swap them), or
//   - a barrier sits between them (everything before a region boundary
//     is durable before anything after it persists).
//
// Nothing orders stores of different cores: PPA regions are per-core and
// the paper's model (like Px86) has no inter-core persist edges without
// explicit synchronization, which these litmus programs do not model as
// ordering (each core's value stream is independent).
//
// A persisted state is *allowed* iff it is the last-writer-per-address
// snapshot of some prefix of some linear extension of ⊑. The model
// computes the exact allowed set by a memoized breadth-first walk over
// persist interleavings — per-address independence would be wrong (a
// 2+2W-shaped test with fences on both cores admits per-address
// candidate combinations that no linearization realizes), so the walk
// keeps the full (persisted-set, memory-state) configuration.
package px86

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Store is one program-order store of a core: 8-byte word address and the
// value the core's functional frontend computes for it.
type Store struct {
	Addr uint64 `json:"addr"`
	Val  uint64 `json:"val"`
}

// CoreProg is one core's persist-relevant event sequence: stores in
// program order plus barrier positions. A barrier at position b orders
// every store with index < b before every store with index >= b. An RMW
// contributes a barrier at its own position followed by its store.
type CoreProg struct {
	Stores   []Store `json:"stores"`
	Barriers []int   `json:"barriers"`
}

// Ordered reports the must-persist-before relation s_i ⊑ s_j for i < j
// within one core: same address, or a barrier between them.
func (c *CoreProg) Ordered(i, j int) bool {
	if i > j {
		i, j = j, i
	}
	if i == j {
		return false
	}
	if c.Stores[i].Addr == c.Stores[j].Addr {
		return true
	}
	for _, b := range c.Barriers {
		if i < b && b <= j {
			return true
		}
	}
	return false
}

// canPersistNext reports whether store j may be the core's next persist
// given the set of already-persisted stores (bitmask): every earlier
// store ordered before j must already be durable.
func (c *CoreProg) canPersistNext(mask uint32, j int) bool {
	for i := 0; i < j; i++ {
		if mask&(1<<i) == 0 && c.Ordered(i, j) {
			return false
		}
	}
	return true
}

// Limits on the exact-enumeration walk. The generator stays far below
// both; hand-written tests that exceed them get an explicit error rather
// than an open-ended search.
const (
	// MaxStoresPerCore bounds one core's store count (bitmask width).
	MaxStoresPerCore = 12
	// maxConfigs bounds the number of distinct (persisted-set, state)
	// configurations the walk may visit.
	maxConfigs = 1 << 22
)

// Model is the solved allowed-outcome set of one litmus test: every NVM
// state any prefix of any legal persist order can exhibit, and the subset
// reachable once every store has drained.
type Model struct {
	Addrs []uint64
	Cores []CoreProg

	addrIdx map[uint64]int
	allowed map[string]bool // states of any legal prefix
	final   map[string]bool // states with every store persisted
	configs int
}

// Key renders an NVM state (one value per model address, in Addrs order)
// as the canonical outcome key used throughout the engine: the hexadecimal
// values joined by single spaces.
func Key(vals []uint64) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(v, 16))
	}
	return b.String()
}

// NewModel solves the allowed-outcome sets for the given per-core
// programs over the given address set (ascending, word-aligned).
func NewModel(cores []CoreProg, addrs []uint64) (*Model, error) {
	m := &Model{
		Addrs:   addrs,
		Cores:   cores,
		addrIdx: make(map[uint64]int, len(addrs)),
		allowed: make(map[string]bool),
		final:   make(map[string]bool),
	}
	for i, a := range addrs {
		if i > 0 && addrs[i-1] >= a {
			return nil, fmt.Errorf("px86: addresses must be strictly ascending")
		}
		m.addrIdx[a] = i
	}
	total := 0
	for ci := range cores {
		c := &cores[ci]
		if len(c.Stores) > MaxStoresPerCore {
			return nil, fmt.Errorf("px86: core %d has %d stores (max %d)", ci, len(c.Stores), MaxStoresPerCore)
		}
		for _, s := range c.Stores {
			if _, ok := m.addrIdx[s.Addr]; !ok {
				return nil, fmt.Errorf("px86: core %d stores to %#x, not a model address", ci, s.Addr)
			}
		}
		for _, b := range c.Barriers {
			if b < 0 || b > len(c.Stores) {
				return nil, fmt.Errorf("px86: core %d barrier position %d out of range", ci, b)
			}
		}
		total += len(c.Stores)
	}
	if err := m.solve(); err != nil {
		return nil, err
	}
	_ = total
	return m, nil
}

// config is one node of the persist-interleaving walk: which stores of
// each core have persisted (bitmasks) and the resulting memory state.
type config struct {
	masks []uint32
	vals  []uint64
}

func (m *Model) configKey(c *config) string {
	var b strings.Builder
	for _, mk := range c.masks {
		b.WriteString(strconv.FormatUint(uint64(mk), 16))
		b.WriteByte('.')
	}
	b.WriteByte('|')
	b.WriteString(Key(c.vals))
	return b.String()
}

func (m *Model) full(c *config) bool {
	for ci := range m.Cores {
		if c.masks[ci] != uint32(1)<<len(m.Cores[ci].Stores)-1 {
			return false
		}
	}
	return true
}

// solve walks every legal persist interleaving, memoized on the full
// configuration, recording each visited memory state (and, for drained
// configurations, the final-state subset).
func (m *Model) solve() error {
	start := &config{masks: make([]uint32, len(m.Cores)), vals: make([]uint64, len(m.Addrs))}
	m.record(start)
	seen := map[string]bool{m.configKey(start): true}
	queue := []*config{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for ci := range m.Cores {
			prog := &m.Cores[ci]
			mask := cur.masks[ci]
			for j := range prog.Stores {
				if mask&(1<<j) != 0 || !prog.canPersistNext(mask, j) {
					continue
				}
				next := &config{
					masks: append([]uint32(nil), cur.masks...),
					vals:  append([]uint64(nil), cur.vals...),
				}
				next.masks[ci] |= 1 << j
				next.vals[m.addrIdx[prog.Stores[j].Addr]] = prog.Stores[j].Val
				k := m.configKey(next)
				if seen[k] {
					continue
				}
				seen[k] = true
				if m.configs++; m.configs > maxConfigs {
					return fmt.Errorf("px86: model exceeds %d configurations", maxConfigs)
				}
				m.record(next)
				queue = append(queue, next)
			}
		}
	}
	return nil
}

func (m *Model) record(c *config) {
	k := Key(c.vals)
	m.allowed[k] = true
	if m.full(c) {
		m.final[k] = true
	}
}

// Member reports whether the state is reachable at some point of some
// legal persist order (the soundness check applies it to every observed
// NVM state, including crash images).
func (m *Model) Member(vals []uint64) bool { return m.allowed[Key(vals)] }

// MemberKey is Member on an already-rendered outcome key.
func (m *Model) MemberKey(key string) bool { return m.allowed[key] }

// FinalMember reports whether the state is legal once every store has
// drained (applied to the post-run, post-drain NVM image).
func (m *Model) FinalMember(vals []uint64) bool { return m.final[Key(vals)] }

// FinalMemberKey is FinalMember on an already-rendered outcome key.
func (m *Model) FinalMemberKey(key string) bool { return m.final[key] }

// Outcomes returns every allowed state key, sorted.
func (m *Model) Outcomes() []string { return sortedKeys(m.allowed) }

// FinalOutcomes returns every allowed drained-state key, sorted.
func (m *Model) FinalOutcomes() []string { return sortedKeys(m.final) }

// Configs returns the number of distinct persist configurations the
// solver visited (a size diagnostic for `ppalitmus explain`).
func (m *Model) Configs() int { return m.configs }

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
