package px86

import (
	"strings"
	"testing"
)

// ev is one scripted tracker event for the table-driven tests.
type ev struct {
	kind string // commit | accept | arm | complete
	core int
	seq  int
	addr uint64
	val  uint64
}

func commit(core, seq int, addr, val uint64) ev {
	return ev{kind: "commit", core: core, seq: seq, addr: addr, val: val}
}
func accept(addr, val uint64) ev { return ev{kind: "accept", addr: addr, val: val} }
func arm(core int) ev            { return ev{kind: "arm", core: core} }
func complete(core int) ev       { return ev{kind: "complete", core: core} }

// TestTrackerRules drives the tracker through the persist-ordering edge
// cases the old ad-hoc persistChecker regressed on, now expressed as the
// model's axioms.
func TestTrackerRules(t *testing.T) {
	const a, b = uint64(0x1000), uint64(0x1040)
	cases := []struct {
		name          string
		events        []ev
		wantViolation string // "" = clean; otherwise a substring of Kind/Detail
		wantUnmatched uint64
	}{
		{
			name: "in-order-drain",
			events: []ev{
				commit(0, 1, a, 10), accept(a, 10),
				commit(0, 2, a, 11), accept(a, 11),
				arm(0), complete(0),
			},
		},
		{
			name: "coalescing-subsumption",
			// Two same-word commits, one accept of the newer value: the
			// older store is absorbed and the barrier must treat it as
			// durable — flagging it lost was the historical false alarm.
			events: []ev{
				commit(0, 1, a, 10), commit(0, 2, a, 11),
				arm(0),
				accept(a, 11),
				complete(0),
			},
		},
		{
			name: "idempotent-reaccept",
			// The device re-accepts the currently-durable value (eviction
			// writeback replaying the line image): never a violation, never
			// counted unmatched, and it must not re-arm outstanding state.
			events: []ev{
				commit(0, 1, a, 10), accept(a, 10),
				accept(a, 10),
				arm(0), complete(0),
			},
		},
		{
			name: "reelided-sync-persist",
			// Committing the already-durable value with an empty queue is
			// elided (sync-persist ablation): the barrier sees nothing
			// outstanding even though no new accept will ever arrive.
			events: []ev{
				commit(0, 1, a, 10), accept(a, 10),
				commit(0, 2, a, 10),
				arm(0), complete(0),
			},
		},
		{
			name: "barrier-incomplete",
			events: []ev{
				commit(0, 1, a, 10),
				arm(0), complete(0),
			},
			wantViolation: "barrier-incomplete",
		},
		{
			name: "barrier-scoped-to-core",
			// Core 1's barrier does not wait for core 0's stores: no
			// inter-core persist edges.
			events: []ev{
				commit(0, 1, a, 10),
				arm(1), complete(1),
			},
		},
		{
			name: "barrier-ignores-post-arm-commits",
			// Stores committed after arm are outside the snapshot.
			events: []ev{
				commit(0, 1, a, 10), accept(a, 10),
				arm(0),
				commit(0, 2, b, 20),
				complete(0),
			},
		},
		{
			name: "unmatched-accept-counted",
			events: []ev{
				accept(a, 99),
			},
			wantUnmatched: 1,
		},
		{
			name: "subsumption-keeps-newer-outstanding",
			// Accepting an older value retires only that store; the newer
			// one stays outstanding and still blocks the barrier.
			events: []ev{
				commit(0, 1, a, 10), commit(0, 2, a, 11),
				accept(a, 10),
				arm(0), complete(0),
			},
			wantViolation: "barrier-incomplete",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracker(2)
			for _, e := range tc.events {
				switch e.kind {
				case "commit":
					tr.CommitStore(e.core, e.seq, e.addr, e.val)
				case "accept":
					tr.Accept(100, e.addr, e.val)
				case "arm":
					tr.BarrierArm(e.core)
				case "complete":
					tr.BarrierComplete(e.core, 200, "sync")
				}
			}
			v := tr.Err()
			if tc.wantViolation == "" {
				if v != nil {
					t.Fatalf("unexpected violation: %s: %s", v.Kind, v.Detail)
				}
			} else {
				if v == nil {
					t.Fatalf("expected %q violation, tracker is clean", tc.wantViolation)
				}
				if !strings.Contains(v.Kind+" "+v.Detail, tc.wantViolation) {
					t.Fatalf("violation %s (%s) does not mention %q", v.Kind, v.Detail, tc.wantViolation)
				}
			}
			if tr.Unmatched != tc.wantUnmatched {
				t.Errorf("Unmatched = %d, want %d", tr.Unmatched, tc.wantUnmatched)
			}
		})
	}
}

// TestTrackerViolationFields pins the violation's structured fields — the
// oracle report (and its String() form) depends on them.
func TestTrackerViolationFields(t *testing.T) {
	tr := NewTracker(1)
	tr.CommitStore(0, 42, 0x2000, 7)
	tr.BarrierArm(0)
	tr.BarrierComplete(0, 555, "region")
	v := tr.Err()
	if v == nil {
		t.Fatal("no violation")
	}
	if v.Kind != "barrier-incomplete" || v.Core != 0 || v.Cycle != 555 ||
		v.Addr != 0x2000 || v.Seq != 42 || v.Got != 7 {
		t.Fatalf("violation fields wrong: %+v", v)
	}
	if !strings.Contains(v.Detail, "region boundary") || !strings.Contains(v.Detail, "seq 42") {
		t.Fatalf("detail missing context: %s", v.Detail)
	}
}

// TestTrackerReset: a power failure clears outstanding and durable state,
// so post-crash accepts are judged fresh.
func TestTrackerReset(t *testing.T) {
	tr := NewTracker(1)
	tr.CommitStore(0, 1, 0x1000, 5)
	tr.BarrierArm(0)
	tr.Reset()
	tr.BarrierComplete(0, 1, "sync")
	if v := tr.Err(); v != nil {
		t.Fatalf("violation across reset: %+v", v)
	}
	if len(tr.Durable()) != 0 {
		t.Fatal("durable map survived reset")
	}
}
