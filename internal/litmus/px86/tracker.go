package px86

import (
	"fmt"
	"sort"
)

// Violation is a persist-ordering rule violation detected by the Tracker.
// The lockstep oracle wraps it into its own report type; the litmus
// harness records it as a forbidden outcome.
type Violation struct {
	Kind   string `json:"kind"`
	Core   int    `json:"core"`
	Cycle  uint64 `json:"cycle"`
	Addr   uint64 `json:"addr"`
	Seq    int    `json:"seq"`
	Got    uint64 `json:"got"`
	Want   uint64 `json:"want"`
	Detail string `json:"detail"`
}

// pending is a committed-but-not-yet-durable store.
type pending struct {
	core int
	seq  int
	val  uint64
}

// Tracker checks a live commit/accept event stream against the model's
// per-core persist rules. It is the operational form of the ⊑ relation
// (see the package comment): instead of enumerating outcomes up front it
// consumes the machine's own event order and verifies, incrementally,
// that the order is a legal linearization.
//
// Rules enforced, and the model axiom each one operationalizes:
//
//   - Coalescing subsumption: an accepted value retires every *older*
//     committed store to the same word (per-location order: a newer
//     same-address store persisting implies the older ones can never
//     persist afterwards, because s_old ⊑ s_new — they are "absorbed").
//     An accept whose value matches no outstanding store and is not an
//     idempotent re-accept of the current durable value is counted in
//     Unmatched (eviction writebacks replay old line images legally).
//   - Idempotent re-accept: persisting the currently-durable value again
//     is a no-op in the model (same last-writer snapshot), so it is
//     never a violation and never re-arms outstanding state.
//   - Barrier drain: when a region boundary completes, every store the
//     boundary observed at arm time (the snapshot) must be durable —
//     the barrier axiom s_i ⊑ s_j for i < barrier <= j, specialized to
//     the machine's own completion signal.
//
// Cross-core accepted-value interleaving is deliberately unconstrained,
// matching the model's lack of inter-core persist edges.
type Tracker struct {
	// outstanding maps a word address to its committed, not-yet-durable
	// stores in commit order.
	outstanding map[uint64][]pending
	// lastDurable is the newest NVM-accepted value per word.
	lastDurable map[uint64]uint64
	// armed is each core's barrier snapshot: word -> newest outstanding
	// seq at arm time. nil when no barrier is in flight.
	armed []map[uint64]int

	// Accepts, Barriers, and Unmatched count processed accept words,
	// completed barriers, and accepts that matched no outstanding store
	// (legal: eviction writebacks and line-granular re-persists).
	Accepts   uint64
	Barriers  uint64
	Unmatched uint64

	viol *Violation
}

// NewTracker returns a Tracker for a machine with the given core count.
func NewTracker(cores int) *Tracker {
	return &Tracker{
		outstanding: make(map[uint64][]pending),
		lastDurable: make(map[uint64]uint64),
		armed:       make([]map[uint64]int, cores),
	}
}

// Err returns the first violation, or nil.
func (t *Tracker) Err() *Violation { return t.viol }

// Durable returns the live newest-accepted-value-per-word map. Callers
// must treat it as read-only; the oracle's final image check iterates it.
func (t *Tracker) Durable() map[uint64]uint64 { return t.lastDurable }

// Reset clears all persist state (crash: the write path loses its
// queues, the durable image survives but recovery revalidates it).
func (t *Tracker) Reset() {
	t.outstanding = make(map[uint64][]pending)
	t.lastDurable = make(map[uint64]uint64)
	for i := range t.armed {
		t.armed[i] = nil
	}
}

// CommitStore records a committed store: it is now outstanding until the
// accept stream shows it (or a newer same-word store) durable. A store
// of the currently-durable value with nothing outstanding is dropped —
// the machine may elide it entirely (sync-persist ablation), and in the
// model re-persisting the same last-writer value changes no outcome.
func (t *Tracker) CommitStore(core, seq int, addr, val uint64) {
	q := t.outstanding[addr]
	if len(q) == 0 {
		if last, ok := t.lastDurable[addr]; ok && last == val {
			return
		}
	}
	t.outstanding[addr] = append(q, pending{core: core, seq: seq, val: val})
}

// Accept processes one accepted (durable) word from the NVM accept
// stream, retiring outstanding stores by coalescing subsumption.
func (t *Tracker) Accept(cycle, addr, val uint64) {
	t.Accepts++
	q := t.outstanding[addr]
	for i := len(q) - 1; i >= 0; i-- {
		if q[i].val == val {
			// This accept makes store i durable and subsumes everything
			// older at this word: s_k ⊑ s_i for k < i (same address), and
			// a coalescing write buffer persists only the newest value.
			if tail := q[i+1:]; len(tail) == 0 {
				delete(t.outstanding, addr)
			} else {
				t.outstanding[addr] = tail
			}
			t.lastDurable[addr] = val
			return
		}
	}
	if last, ok := t.lastDurable[addr]; ok && last == val {
		// Idempotent re-accept (e.g. an evicted line re-persisting its
		// current image): allowed, nothing outstanding changes.
		return
	}
	t.Unmatched++
	t.lastDurable[addr] = val
}

// BarrierArm snapshots the core's outstanding stores when a region
// boundary arms: per word, the newest outstanding seq this core
// committed. BarrierComplete demands exactly this snapshot durable.
func (t *Tracker) BarrierArm(core int) {
	snap := make(map[uint64]int)
	for addr, q := range t.outstanding {
		for i := len(q) - 1; i >= 0; i-- {
			if q[i].core == core {
				snap[addr] = q[i].seq
				break
			}
		}
	}
	t.armed[core] = snap
}

// BarrierComplete checks the barrier axiom at the machine's own
// completion signal: every store in the arm snapshot must have drained.
// cause labels the boundary kind for the violation detail.
func (t *Tracker) BarrierComplete(core int, cycle uint64, cause string) {
	t.Barriers++
	snap := t.armed[core]
	t.armed[core] = nil
	if len(snap) == 0 || t.viol != nil {
		return
	}
	addrs := make([]uint64, 0, len(snap))
	for addr := range snap {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		limit := snap[addr]
		for _, st := range t.outstanding[addr] {
			if st.core == core && st.seq <= limit {
				t.viol = &Violation{
					Kind:  "barrier-incomplete",
					Core:  core,
					Cycle: cycle,
					Addr:  addr,
					Seq:   st.seq,
					Got:   st.val,
					Detail: fmt.Sprintf(
						"%s boundary completed at cycle %d but the store at seq %d ([%#x] <- %#x) committed before the barrier armed and is not durable",
						cause, cycle, st.seq, addr, st.val),
				}
				return
			}
		}
	}
}
