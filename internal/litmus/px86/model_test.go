package px86

import (
	"reflect"
	"testing"
)

const (
	addrA = uint64(0x1000)
	addrB = uint64(0x1040)
)

func mustModel(t *testing.T, cores []CoreProg, addrs []uint64) *Model {
	t.Helper()
	m, err := NewModel(cores, addrs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestModelSB: two cores, one independent store each — every interleaving
// prefix is allowed and the only final state has both stores applied.
func TestModelSB(t *testing.T) {
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}}},
		{Stores: []Store{{Addr: addrB, Val: 2}}},
	}, []uint64{addrA, addrB})
	wantAllowed := []string{"0 0", "0 2", "1 0", "1 2"}
	if got := m.Outcomes(); !reflect.DeepEqual(got, wantAllowed) {
		t.Errorf("allowed = %v, want %v", got, wantAllowed)
	}
	if got, want := m.FinalOutcomes(), []string{"1 2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("final = %v, want %v", got, want)
	}
}

// TestModelMP: data, barrier, flag on one core — the flag must never be
// durable without the data.
func TestModelMP(t *testing.T) {
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}, {Addr: addrB, Val: 2}}, Barriers: []int{1}},
	}, []uint64{addrA, addrB})
	wantAllowed := []string{"0 0", "1 0", "1 2"}
	if got := m.Outcomes(); !reflect.DeepEqual(got, wantAllowed) {
		t.Errorf("allowed = %v, want %v", got, wantAllowed)
	}
	if m.Member([]uint64{0, 2}) {
		t.Error("flag-without-data allowed; the barrier edge is not enforced")
	}
}

// TestModelMPNoBarrier: without the barrier the flag may persist first.
func TestModelMPNoBarrier(t *testing.T) {
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}, {Addr: addrB, Val: 2}}},
	}, []uint64{addrA, addrB})
	if !m.Member([]uint64{0, 2}) {
		t.Error("unordered cross-address stores must allow either persist order")
	}
}

// TestModel2p2w pins the case that breaks per-address reasoning: with
// fences on both cores, the "both second stores win while both first
// stores are final losers" combination requires a cyclic linearization
// and must be excluded from the final set — even though each address's
// value is individually a legal last writer.
func TestModel2p2w(t *testing.T) {
	// p0: A<-1; fence; B<-4.  p1: B<-7; fence; A<-7.
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}, {Addr: addrB, Val: 4}}, Barriers: []int{1}},
		{Stores: []Store{{Addr: addrB, Val: 7}, {Addr: addrA, Val: 7}}, Barriers: []int{1}},
	}, []uint64{addrA, addrB})
	wantFinal := []string{"1 4", "7 4", "7 7"}
	if got := m.FinalOutcomes(); !reflect.DeepEqual(got, wantFinal) {
		t.Fatalf("final = %v, want %v", got, wantFinal)
	}
	// {A=1, B=7} would need p1's A<-7 before p0's A<-1 (A order) and p0's
	// B<-4 before p1's B<-7 (B order) — with the fences that is the cycle
	// A7 < A1 < B4 < B7 < A7.
	if m.FinalMember([]uint64{1, 7}) {
		t.Error("cyclic 2+2W outcome admitted: the solver is reasoning per-address")
	}
	// As a transient prefix (not all stores persisted) {A=1, B=7} is fine:
	// persist A1 then B7, leaving B4 and A7 outstanding... which the fence
	// forbids too (B7 needs A7 first? no: p1's fence orders B7 before A7,
	// so B7 alone is fine; p0's fence orders A1 before B4, so A1 alone is
	// fine). It must therefore be in the allowed set.
	if !m.Member([]uint64{1, 7}) {
		t.Error("{A=1,B=7} must be reachable as a transient prefix")
	}
}

// TestModelSameAddressChain: same-word stores of one core persist in
// program order even without barriers; intermediate skips (coalescing)
// are legal, reorderings are not.
func TestModelSameAddressChain(t *testing.T) {
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}, {Addr: addrA, Val: 2}, {Addr: addrA, Val: 3}}},
	}, []uint64{addrA})
	wantAllowed := []string{"0", "1", "2", "3"}
	if got := m.Outcomes(); !reflect.DeepEqual(got, wantAllowed) {
		t.Errorf("allowed = %v, want %v", got, wantAllowed)
	}
	if got, want := m.FinalOutcomes(), []string{"3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("final = %v, want %v", got, want)
	}
}

// TestModelOrdered pins the ⊑ relation directly.
func TestModelOrdered(t *testing.T) {
	cp := CoreProg{
		Stores:   []Store{{Addr: addrA, Val: 1}, {Addr: addrB, Val: 2}, {Addr: addrA, Val: 3}},
		Barriers: []int{2},
	}
	cases := []struct {
		i, j int
		want bool
	}{
		{0, 1, false}, // different addresses, no barrier between
		{0, 2, true},  // same address
		{1, 2, true},  // barrier at 2 sits between store 1 and store 2
		{2, 0, true},  // Ordered is symmetric in argument order
		{1, 1, false},
	}
	for _, c := range cases {
		if got := cp.Ordered(c.i, c.j); got != c.want {
			t.Errorf("Ordered(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

// TestModelRMWShape: an RMW is a barrier followed by its store — earlier
// stores of the core must be durable before the RMW's value.
func TestModelRMWShape(t *testing.T) {
	// st A<-1; rmw B (barrier, then B<-5).
	m := mustModel(t, []CoreProg{
		{Stores: []Store{{Addr: addrA, Val: 1}, {Addr: addrB, Val: 5}}, Barriers: []int{1}},
	}, []uint64{addrA, addrB})
	if m.Member([]uint64{0, 5}) {
		t.Error("RMW persisted before the store its implicit barrier orders first")
	}
}

// TestModelErrors: the constructor rejects malformed inputs explicitly.
func TestModelErrors(t *testing.T) {
	if _, err := NewModel([]CoreProg{{Stores: []Store{{Addr: 0x9999, Val: 1}}}}, []uint64{addrA}); err == nil {
		t.Error("store to a non-model address accepted")
	}
	if _, err := NewModel(nil, []uint64{addrB, addrA}); err == nil {
		t.Error("descending address set accepted")
	}
	if _, err := NewModel([]CoreProg{{Stores: []Store{{Addr: addrA, Val: 1}}, Barriers: []int{5}}}, []uint64{addrA}); err == nil {
		t.Error("out-of-range barrier position accepted")
	}
	long := CoreProg{}
	for i := 0; i <= MaxStoresPerCore; i++ {
		long.Stores = append(long.Stores, Store{Addr: addrA, Val: uint64(i + 1)})
	}
	if _, err := NewModel([]CoreProg{long}, []uint64{addrA}); err == nil {
		t.Error("oversized core accepted")
	}
}
