package litmus

import (
	"fmt"
	"sort"
	"strings"

	"ppa/internal/forensics"
	"ppa/internal/isa"
	"ppa/internal/litmus/px86"
	"ppa/internal/multicore"
	"ppa/internal/nvm"
	"ppa/internal/obs"
	"ppa/internal/persist"
	"ppa/internal/pipeline"
	"ppa/internal/workload"
)

// RunOptions parameterizes the conformance harness.
type RunOptions struct {
	// Schedules is the number of perturbed schedules per test (default 50).
	Schedules int
	// Seed selects the deterministic perturbation stream.
	Seed uint64
	// MaxCycles bounds each schedule's run and drain (default 50_000).
	MaxCycles uint64
	// Scheme, when non-nil, runs every schedule under this persistence
	// scheme instead of the default PPA configuration. The harness adapts
	// its observation point to the scheme's durability carrier: schemes
	// whose image is fed by the NVM accept stream are checked there, while
	// redo-logging schemes (whose accept path is silent) are checked on the
	// durable log stream. Gated schemes may legally finish the trace with an
	// open region whose stores are still volatile, so their full-drain check
	// relaxes from the final-outcome set to the allowed set; their crash
	// legs additionally recover through the scheme's own protocol and
	// require the recovered image to be an allowed state.
	Scheme *persist.Config
	// Lockstep additionally runs every schedule under the differential
	// oracle (slower; used when replaying regression corpora through the
	// production persist checker).
	Lockstep bool
	// Obs, when non-nil, ticks live litmus.* metrics.
	Obs *obs.Hub
	// Forensics, when non-nil, captures a flight-recorder bundle (NVM
	// accept tail, trace/metrics snapshot from Obs, the first forbidden
	// outcome) for every schedule that produced a forbidden outcome.
	Forensics *forensics.Recorder
}

func (o RunOptions) normalized() RunOptions {
	if o.Schedules <= 0 {
		o.Schedules = 50
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000
	}
	return o
}

// Forbidden is one conformance violation: an observation the axiomatic
// model does not allow (or a machine-level failure while producing one).
type Forbidden struct {
	Test     string `json:"test"`
	Schedule int    `json:"schedule"`
	Kind     string `json:"kind"`
	Cycle    uint64 `json:"cycle"`
	State    string `json:"state,omitempty"`
	Detail   string `json:"detail"`
}

func (f *Forbidden) String() string {
	s := fmt.Sprintf("%s schedule %d cycle %d: %s: %s", f.Test, f.Schedule, f.Cycle, f.Kind, f.Detail)
	if f.State != "" {
		s += " [state " + f.State + "]"
	}
	return s
}

// TestResult aggregates one test's runs across all perturbed schedules.
type TestResult struct {
	Name      string `json:"name"`
	Cores     int    `json:"cores"`
	Schedules int    `json:"schedules"`
	Crashes   int    `json:"crashes"`
	// Allowed is the model's full allowed-outcome set; FinalAllowed the
	// subset legal once every store drained.
	Allowed      []string `json:"allowed"`
	FinalAllowed []string `json:"final_allowed"`
	// Observed counts how often each outcome key was seen across all
	// schedules' accept streams (soundness: every key must be allowed).
	Observed map[string]int `json:"observed"`
	// Unreached lists allowed outcomes no schedule exhibited (coverage:
	// reported, not failed — the machine legally over-synchronizes, e.g.
	// its per-core FIFO persist path never reorders across lines).
	Unreached []string     `json:"unreached,omitempty"`
	Forbidden []*Forbidden `json:"forbidden,omitempty"`
	// Accepts counts NVM accept-stream words processed.
	Accepts uint64 `json:"accepts"`
}

// maxForbiddenPerTest caps recorded violations per test; one is already
// a gate failure and cascades repeat the same root cause.
const maxForbiddenPerTest = 8

// RunTest compiles the test and runs it through the simulator under
// Schedules perturbed schedules (seeded step-order shuffling, WPQ
// accept-timing jitter, and periodic crash points), checking every
// observation against the axiomatic model.
func RunTest(t *Test, opt RunOptions) (*TestResult, error) {
	c, err := Compile(t)
	if err != nil {
		return nil, err
	}
	opt = opt.normalized()
	res := &TestResult{
		Name:         t.Name,
		Cores:        len(t.Cores),
		Schedules:    opt.Schedules,
		Allowed:      c.Model.Outcomes(),
		FinalAllowed: c.Model.FinalOutcomes(),
		Observed:     make(map[string]int),
	}
	for s := 0; s < opt.Schedules; s++ {
		rec, err := runSchedule(c, s, opt)
		if err != nil {
			return nil, err
		}
		if rec.crashed {
			res.Crashes++
		}
		res.Accepts += rec.accepts
		for k, n := range rec.observed {
			res.Observed[k] += n
		}
		for _, f := range rec.forbidden {
			if len(res.Forbidden) < maxForbiddenPerTest {
				res.Forbidden = append(res.Forbidden, f)
			}
		}
		if opt.Forensics != nil && len(rec.forbidden) > 0 {
			first := rec.forbidden[0]
			b := &forensics.Bundle{Meta: forensics.Meta{
				Kind:         forensics.KindLitmusForbidden,
				Reason:       first.String(),
				Test:         t.Name,
				Schedule:     s,
				Seed:         int64(opt.Seed),
				CaptureCycle: first.Cycle,
			}}
			forensics.Snapshot(opt.Obs, rec.accTail, b)
			_ = opt.Forensics.Capture(b)
		}
	}
	for _, k := range res.Allowed {
		if res.Observed[k] == 0 {
			res.Unreached = append(res.Unreached, k)
		}
	}
	if opt.Obs != nil {
		reg := opt.Obs.Registry()
		reg.Counter("litmus.tests").Inc()
		reg.Counter("litmus.schedules").Add(uint64(opt.Schedules))
		reg.Counter("litmus.forbidden").Add(uint64(len(res.Forbidden)))
		reg.Counter("litmus.outcomes-observed").Add(uint64(len(res.Observed)))
	}
	return res, nil
}

// recorder observes one schedule's commit and NVM accept streams and
// checks them against the compiled model on the fly.
type recorder struct {
	c        *Compiled
	sched    int
	dev      interface{ ReadWord(addr uint64) uint64 }
	addrIdx  map[uint64]int
	overlay  []uint64 // the accept stream's view of the test words
	observed map[string]int
	// watermark[core][slot] counts how many entries of the (core, slot)
	// store chain have persisted; committed[core][slot] how many have
	// committed. armReq[core] snapshots committed at barrier arm.
	watermark [][]int
	committed [][]int
	armReq    [][]int
	// owners maps a value to every (core, slot, chain position) that can
	// produce it (explicit-value corpora may duplicate values).
	owners    map[uint64][]valRef
	forbidden []*Forbidden
	accepts   uint64
	crashed   bool
	tee       pipeline.CommitSink // the lockstep oracle, when attached
	// accTail is the flight recorder's accept-stream ring (RunOptions.
	// Forensics); nil when forensics is off.
	accTail *forensics.AcceptTail
}

type valRef struct{ core, slot, pos int }

func newRecorder(c *Compiled, sched int) *recorder {
	r := &recorder{
		c:        c,
		sched:    sched,
		addrIdx:  make(map[uint64]int, len(c.Addrs)),
		overlay:  make([]uint64, len(c.Addrs)),
		observed: make(map[string]int),
		owners:   make(map[uint64][]valRef),
	}
	for i, a := range c.Addrs {
		r.addrIdx[a] = i
	}
	for core := range c.Chains {
		r.watermark = append(r.watermark, make([]int, len(c.Addrs)))
		r.committed = append(r.committed, make([]int, len(c.Addrs)))
		r.armReq = append(r.armReq, nil)
		for slot, chain := range c.Chains[core] {
			for pos, v := range chain {
				r.owners[v] = append(r.owners[v], valRef{core: core, slot: slot, pos: pos})
			}
		}
	}
	r.observe() // the initial (all-zero) state counts as observed
	return r
}

func (r *recorder) fail(kind string, cycle uint64, state, detail string) {
	if len(r.forbidden) >= maxForbiddenPerTest {
		return
	}
	r.forbidden = append(r.forbidden, &Forbidden{
		Test: r.c.Test.Name, Schedule: r.sched, Kind: kind,
		Cycle: cycle, State: state, Detail: detail,
	})
}

// observe records the overlay as an observed outcome and checks model
// membership (the soundness direction).
func (r *recorder) observe() {
	key := px86.Key(r.overlay)
	r.observed[key]++
}

// onLogWord consumes one durable log-carried data record. For redo-logging
// schemes the log, not the accept stream, is the durability carrier: a
// record is durable at append, in commit order, so the same per-location
// chain and state-membership checks apply to the log fold. The image check
// is skipped — the image legitimately trails the log until the background
// applier catches up.
func (r *recorder) onLogWord(cycle, addr, val uint64) {
	slot, ok := r.addrIdx[addr]
	if !ok {
		r.fail("stray-accept", cycle, "",
			fmt.Sprintf("logged word [%#x] <- %#x outside the test's address slots", addr, val))
		return
	}
	r.accepts++
	r.checkWord(cycle, slot, addr, val)
	r.overlay[slot] = val
	r.observe()
	if key := px86.Key(r.overlay); !r.c.Model.MemberKey(key) {
		r.fail("forbidden-state", cycle, key,
			"durable log stream reached a state outside the model's allowed set")
	}
}

// onAccept consumes one accepted line from the NVM device.
func (r *recorder) onAccept(cycle, line uint64, words *isa.LineWords) {
	touched := false
	words.Range(line, func(addr, val uint64) {
		slot, ok := r.addrIdx[addr]
		if !ok {
			r.fail("stray-accept", cycle, "",
				fmt.Sprintf("accepted word [%#x] <- %#x outside the test's address slots", addr, val))
			return
		}
		touched = true
		r.accepts++
		r.checkWord(cycle, slot, addr, val)
		r.overlay[slot] = val
	})
	if !touched {
		return
	}
	r.observe()
	if key := px86.Key(r.overlay); !r.c.Model.MemberKey(key) {
		r.fail("forbidden-state", cycle, key,
			"NVM accept stream reached a state outside the model's allowed set")
	}
	// The durable image must agree with the accept stream word for word.
	for slot, addr := range r.c.Addrs {
		if img := r.dev.ReadWord(addr); img != r.overlay[slot] {
			r.fail("image-divergence", cycle, px86.Key(r.overlay),
				fmt.Sprintf("durable image holds [%#x] = %#x, accept stream says %#x", addr, img, r.overlay[slot]))
		}
	}
}

// checkWord enforces per-location per-core persist order: within one
// core's same-slot store chain, values persist in program order (skips
// allowed — coalescing; repeats of the current position allowed —
// idempotent re-accepts). A value older than the chain's watermark can
// never legally reappear.
func (r *recorder) checkWord(cycle uint64, slot int, addr, val uint64) {
	refs := r.owners[val]
	if val == 0 || len(refs) == 0 {
		r.fail("unknown-value", cycle, "",
			fmt.Sprintf("accepted word [%#x] <- %#x matches no store of the test", addr, val))
		return
	}
	best := -1
	bestPos := 0
	for i, ref := range refs {
		if ref.slot != slot {
			continue
		}
		// Plausible writers: at or past the chain watermark (pos+1 is the
		// watermark after this accept; pos == watermark-1 is idempotent).
		if ref.pos >= r.watermark[ref.core][slot]-1 {
			if best == -1 || ref.pos < bestPos {
				best, bestPos = i, ref.pos
			}
		}
	}
	if best == -1 {
		r.fail("persist-order", cycle, "",
			fmt.Sprintf("accepted word [%#x] <- %#x is older than its core's per-location persist watermark", addr, val))
		return
	}
	// Advance the watermark past the matched position and through any run
	// of equal-valued successors: persisting one of them makes the others'
	// effects durable too (write-buffer coalescing may subsume them into a
	// single accept, and an identical re-accept is indistinguishable from
	// the later store's own persist).
	ref := refs[best]
	chain := r.c.Chains[ref.core][slot]
	wm := ref.pos + 1
	for wm < len(chain) && chain[wm] == val {
		wm++
	}
	if wm > r.watermark[ref.core][slot] {
		r.watermark[ref.core][slot] = wm
	}
}

// ObserveCommit tracks per-(core, slot) committed store counts for the
// barrier-completion check, forwarding to the oracle when attached.
func (r *recorder) ObserveCommit(ev *pipeline.CommitEvent) {
	if r.tee != nil {
		r.tee.ObserveCommit(ev)
	}
	if !ev.IsStore {
		return
	}
	if slot, ok := r.addrIdx[ev.StoreAddr]; ok {
		r.committed[ev.Core][slot]++
	}
}

// ObserveBarrierArm snapshots what the completing barrier must drain.
func (r *recorder) ObserveBarrierArm(core int, cycle uint64) {
	if r.tee != nil {
		r.tee.ObserveBarrierArm(core, cycle)
	}
	r.armReq[core] = append([]int(nil), r.committed[core]...)
}

// ObserveBarrierComplete applies the model's barrier axiom at the
// machine's own completion signal: every store this core committed
// before the barrier armed must be durable by now. The machine's FIFO
// persist path makes barrier bugs state-invisible — every intermediate
// NVM state stays individually allowed — so this durability-at-
// completion check is what gives the litmus gate teeth against them.
func (r *recorder) ObserveBarrierComplete(core int, cycle uint64, cause pipeline.BoundaryCause) {
	if r.tee != nil {
		r.tee.ObserveBarrierComplete(core, cycle, cause)
	}
	req := r.armReq[core]
	r.armReq[core] = nil
	for slot, need := range req {
		if r.watermark[core][slot] < need {
			r.fail("barrier-incomplete", cycle, px86.Key(r.overlay),
				fmt.Sprintf("core %d %s boundary completed with %d/%d stores to slot %d durable",
					core, cause, r.watermark[core][slot], need, slot))
		}
	}
}

// runSchedule executes one perturbed schedule of a compiled test.
func runSchedule(c *Compiled, sched int, opt RunOptions) (*recorder, error) {
	sseed := mix(opt.Seed, hashName(c.Test.Name), uint64(sched))
	n := len(c.Progs)
	w := &workload.Workload{
		Profile: workload.Profile{
			Name:           "litmus",
			DepDistance:    1,
			Threads:        n,
			SyncContention: 1,
		},
		Threads: c.Progs,
	}
	sch := persist.PPADefault()
	if opt.Scheme != nil {
		sch = *opt.Scheme
	}
	scheme := persist.SchemeFor(sch)
	// The durability carrier: redo-logging schemes with a silent accept path
	// are observed on the durable log stream instead.
	logCarried := sch.RedoLogStores && !sch.AsyncPersist
	// Gated schemes may legally end the trace with an open region whose
	// stores are still volatile (staged or gated in the store buffer), so
	// the full-drain state is a legal intermediate, not a final outcome.
	openTail := sch.GateStoreBuffer
	cfg := multicore.DefaultConfig(n, sch)
	// Short persist latencies keep 50-schedule sweeps fast while leaving
	// a window the accept-timing jitter can actually reorder within.
	cfg.Hierarchy.PersistTransit = 24
	cfg.Hierarchy.PersistLag = 60
	cfg.StepSeed = sseed | 1
	cfg.PersistPerturb = func(core int, cycle uint64) bool {
		// Defer ~25% of (core, cycle) accept slots: enough jitter to
		// shuffle cross-core accept interleavings, low enough that every
		// entry still drains promptly.
		return mix(sseed, 0xACC, cycle, uint64(core))&3 == 0
	}
	cfg.Lockstep = opt.Lockstep
	sys, err := multicore.NewSystem(cfg, w)
	if err != nil {
		return nil, err
	}
	rec := newRecorder(c, sched)
	rec.dev = sys.Device().Image()
	if logCarried {
		sys.Device().AddLogObserver(func(core int, lr nvm.LogRecord) {
			if lr.Marker {
				return
			}
			rec.onLogWord(sys.Cycle(), lr.Addr, lr.Val)
		})
	} else {
		sys.Device().AddAcceptObserver(rec.onAccept)
	}
	if opt.Forensics != nil {
		rec.accTail = forensics.NewAcceptTail(forensics.DefaultAcceptTail)
		sys.Device().AddAcceptObserver(rec.accTail.Observe)
	}
	for _, core := range sys.Cores() {
		if opt.Lockstep {
			rec.tee = sys.Oracle()
		}
		core.SetCommitSink(rec)
	}

	// Every fourth schedule is a crash leg: run to a seeded cycle, pull
	// power, and require the surviving NVM state allowed by the model.
	// Transaction schemes additionally run their own recovery protocol and
	// must land the recovered image on an allowed state.
	if sched%4 == 3 {
		rec.crashed = true
		target := sys.Cycle() + 20 + mix(sseed, 0xC4A54)%400
		if _, err := sys.RunUntil(target); err != nil {
			rec.fail("run-error", sys.Cycle(), "", err.Error())
			return rec, nil
		}
		sys.Hierarchy().PowerFail()
		key := px86.Key(rec.overlay)
		if !c.Model.MemberKey(key) {
			rec.fail("forbidden-state", sys.Cycle(), key, "crash image outside the model's allowed set")
		}
		if scheme.Contract() == persist.RecoverTxnBoundary {
			if _, rerr := scheme.Recover(sys.Device(), n); rerr != nil {
				rec.fail("recovery-error", sys.Cycle(), "", rerr.Error())
				return rec, nil
			}
			state := make([]uint64, len(c.Addrs))
			for slot, addr := range c.Addrs {
				state[slot] = sys.Device().Image().ReadWord(addr)
			}
			if rkey := px86.Key(state); !c.Model.MemberKey(rkey) {
				rec.fail("forbidden-recovered-state", sys.Cycle(), rkey,
					"recovered NVM image outside the model's allowed set")
			}
		}
		return rec, nil
	}

	if err := sys.Run(opt.MaxCycles); err != nil {
		rec.fail("run-error", sys.Cycle(), "", err.Error())
		return rec, nil
	}
	if err := sys.DrainPersists(opt.MaxCycles); err != nil {
		rec.fail("drain-stuck", sys.Cycle(), px86.Key(rec.overlay), err.Error())
		return rec, nil
	}
	// Litmus footprints (2–3 lines) never evict; an eviction writeback
	// would persist lines outside the modeled accept flow, so surface it
	// instead of silently weakening the checks.
	if wb := sys.Hierarchy().NVMWritebacks; wb != 0 {
		rec.fail("unexpected-eviction", sys.Cycle(), "",
			fmt.Sprintf("%d NVM eviction writebacks in a litmus-sized footprint", wb))
	}
	key := px86.Key(rec.overlay)
	if openTail && !logCarried {
		// The open gated tail is legally volatile; the drained state need
		// only be allowed, not all-stores-persisted.
		if !c.Model.MemberKey(key) {
			rec.fail("forbidden-state", sys.Cycle(), key,
				"fully-drained NVM state is outside the model's allowed set")
		}
		return rec, nil
	}
	if !c.Model.FinalMemberKey(key) {
		rec.fail("forbidden-final-state", sys.Cycle(), key,
			"fully-drained NVM state is not a legal all-stores-persisted outcome")
	}
	return rec, nil
}

func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CorpusReport aggregates a corpus run.
type CorpusReport struct {
	Tests          []*TestResult `json:"tests"`
	TotalTests     int           `json:"total_tests"`
	TotalSchedules int           `json:"total_schedules"`
	TotalForbidden int           `json:"total_forbidden"`
	AllowedTotal   int           `json:"allowed_total"`
	ObservedTotal  int           `json:"observed_total"`
	UnreachedTotal int           `json:"unreached_total"`
	// Coverage is observed distinct allowed outcomes / allowed outcomes.
	Coverage float64 `json:"coverage"`
}

// Clean reports whether no forbidden outcome was observed anywhere.
func (r *CorpusReport) Clean() bool { return r.TotalForbidden == 0 }

// RunCorpus runs every test and aggregates soundness and coverage.
// progress (optional) fires after each test.
func RunCorpus(tests []*Test, opt RunOptions, progress func(*TestResult)) (*CorpusReport, error) {
	rep := &CorpusReport{TotalTests: len(tests)}
	for _, t := range tests {
		res, err := RunTest(t, opt)
		if err != nil {
			return nil, err
		}
		rep.Tests = append(rep.Tests, res)
		rep.TotalSchedules += res.Schedules
		rep.TotalForbidden += len(res.Forbidden)
		rep.AllowedTotal += len(res.Allowed)
		rep.ObservedTotal += len(res.Allowed) - len(res.Unreached)
		rep.UnreachedTotal += len(res.Unreached)
		if progress != nil {
			progress(res)
		}
	}
	if rep.AllowedTotal > 0 {
		rep.Coverage = float64(rep.ObservedTotal) / float64(rep.AllowedTotal)
	}
	return rep, nil
}

// FirstForbidden returns the report's first violation, or nil.
func (r *CorpusReport) FirstForbidden() *Forbidden {
	for _, tr := range r.Tests {
		if len(tr.Forbidden) > 0 {
			return tr.Forbidden[0]
		}
	}
	return nil
}

// Shrink greedily minimizes a forbidden-outcome reproducer: while the
// test still exhibits a forbidden outcome under the same options, drop
// operations (and then emptied cores) one at a time.
func Shrink(t *Test, opt RunOptions) *Test {
	cur := cloneTest(t)
	check := func(cand *Test) bool {
		res, err := RunTest(cand, opt)
		return err == nil && len(res.Forbidden) > 0
	}
	if !check(cur) {
		return cur
	}
	for {
		shrunk := false
		for ci := 0; ci < len(cur.Cores); ci++ {
			for oi := 0; oi < len(cur.Cores[ci]); oi++ {
				cand := cloneTest(cur)
				cand.Cores[ci] = append(cand.Cores[ci][:oi:oi], cand.Cores[ci][oi+1:]...)
				if len(cand.Cores[ci]) == 0 {
					cand.Cores = append(cand.Cores[:ci:ci], cand.Cores[ci+1:]...)
				}
				if len(cand.Cores) == 0 {
					continue
				}
				if check(cand) {
					cur = cand
					shrunk = true
				}
			}
		}
		if !shrunk {
			return cur
		}
	}
}

func cloneTest(t *Test) *Test {
	c := &Test{Name: t.Name, NAddrs: t.NAddrs, Layout: t.Layout}
	for _, ops := range t.Cores {
		c.Cores = append(c.Cores, append([]Op(nil), ops...))
	}
	return c
}

// Summarize renders a compact human outcome table for one test.
func Summarize(res *TestResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cores, %d schedules (%d crash legs), %d accepts\n",
		res.Name, res.Cores, res.Schedules, res.Crashes, res.Accepts)
	keys := make([]string, 0, len(res.Observed))
	for k := range res.Observed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	allowed := make(map[string]bool, len(res.Allowed))
	for _, k := range res.Allowed {
		allowed[k] = true
	}
	for _, k := range keys {
		verdict := "allowed"
		if !allowed[k] {
			verdict = "FORBIDDEN"
		}
		fmt.Fprintf(&b, "  %-30s ×%-5d %s\n", k, res.Observed[k], verdict)
	}
	for _, k := range res.Unreached {
		fmt.Fprintf(&b, "  %-30s        allowed, unreached\n", k)
	}
	return b.String()
}
