package litmus

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ppa/internal/mutation"
	"ppa/internal/obs"
)

// TestConformanceCorpusClean is the litmus gate's soundness direction on
// the curated corpus: across perturbed schedules (step-order shuffling,
// WPQ accept jitter, crash legs) the simulator must never exhibit an NVM
// state, final state, or barrier completion the model forbids.
func TestConformanceCorpusClean(t *testing.T) {
	hub := obs.NewHub(0)
	rep, err := RunCorpus(ConformanceCorpus(), RunOptions{Schedules: 24, Seed: 11, Obs: hub}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := rep.FirstForbidden(); f != nil {
		t.Fatalf("forbidden outcome on healthy simulator: %s", f)
	}
	if rep.Coverage <= 0 {
		t.Fatalf("no allowed outcomes observed (coverage %f)", rep.Coverage)
	}
	counters := map[string]float64{}
	for _, s := range hub.Registry().Snapshot() {
		counters[s.Name] = s.Value
	}
	if counters["litmus.tests"] != float64(rep.TotalTests) || counters["litmus.schedules"] == 0 {
		t.Fatalf("litmus.* metrics did not tick: %v", counters)
	}
}

// TestGeneratedCorpusClean runs a generated sample end to end — the same
// path CI's litmus job takes, scaled down.
func TestGeneratedCorpusClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tests := Generate(GenOptions{Seed: 17, Count: 30})
	rep, err := RunCorpus(tests, RunOptions{Schedules: 10, Seed: 29}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f := rep.FirstForbidden(); f != nil {
		t.Fatalf("forbidden outcome on healthy simulator: %s", f)
	}
}

// TestRegressionCorpusLockstep replays the committed regression corpus —
// the coalescing-subsumption and idempotent-re-accept edge cases — under
// the differential oracle, so the production persist checker (the px86
// tracker behind internal/oracle) judges the same streams the harness
// does. Either layer false-alarming fails the run.
func TestRegressionCorpusLockstep(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.litmus"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no committed regression corpus found: %v", err)
	}
	sort.Strings(files)
	var parts []string
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, string(blob))
	}
	tests, err := DecodeCorpus(strings.Join(parts, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, lt := range tests {
		names[lt.Name] = true
	}
	for _, want := range []string{"reg-coalesce-subsume", "reg-idempotent-reaccept"} {
		if !names[want] {
			t.Fatalf("regression corpus lost %s (have %v)", want, Names(tests))
		}
	}
	for _, lt := range tests {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			res, err := RunTest(lt, RunOptions{Schedules: 16, Seed: 23, Lockstep: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Forbidden {
				t.Errorf("false alarm: %s", f)
			}
		})
	}
}

// TestLitmusGateCatchesSeededBugs is the completeness direction: the two
// mutations that only the conformance engine can see (every intermediate
// NVM state individually plausible, single-core runs unaffected) must
// produce a forbidden outcome on the curated corpus.
func TestLitmusGateCatchesSeededBugs(t *testing.T) {
	defer mutation.Disable()
	for _, m := range []mutation.Mutation{
		mutation.CacheCoalesceStaleWord,
		mutation.PipelineBarrierSnapshotCrossCore,
	} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			mutation.Enable(m)
			defer mutation.Disable()
			rep, err := RunCorpus(ConformanceCorpus(), RunOptions{Schedules: 16, Seed: 11}, nil)
			if err != nil {
				t.Fatal(err)
			}
			f := rep.FirstForbidden()
			if f == nil {
				t.Fatalf("seeded bug %s not caught by the litmus gate", m)
			}
			t.Logf("caught: %s", f)
		})
	}
}

// TestShrinkMinimizesReproducer: under a seeded bug, the shrinker must
// return a test that still convicts — typically far smaller than the
// original.
func TestShrinkMinimizesReproducer(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mutation.Enable(mutation.CacheCoalesceStaleWord)
	defer mutation.Disable()
	opt := RunOptions{Schedules: 8, Seed: 11}
	orig := findTestByName(t, "coalesce-subsume")
	min := Shrink(orig, opt)
	res, err := RunTest(min, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forbidden) == 0 {
		t.Fatalf("shrunk test no longer reproduces:\n%s", Encode(min))
	}
	if ops(min) > ops(orig) {
		t.Fatalf("shrinker grew the test: %d -> %d ops", ops(orig), ops(min))
	}
	t.Logf("shrunk %d -> %d ops:\n%s", ops(orig), ops(min), Encode(min))
}

// TestHarnessDeterministic: one seed, one verdict — the gate's failures
// replay exactly.
func TestHarnessDeterministic(t *testing.T) {
	lt := findTestByName(t, "mp-fence")
	run := func() *TestResult {
		res, err := RunTest(lt, RunOptions{Schedules: 12, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepts != b.Accepts || len(a.Observed) != len(b.Observed) {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
	for k, n := range a.Observed {
		if b.Observed[k] != n {
			t.Fatalf("outcome %q observed %d vs %d times", k, n, b.Observed[k])
		}
	}
}

func findTestByName(t *testing.T, name string) *Test {
	t.Helper()
	for _, lt := range ConformanceCorpus() {
		if lt.Name == name {
			return lt
		}
	}
	t.Fatalf("built-in corpus lost %s", name)
	return nil
}

func ops(t *Test) int {
	n := 0
	for _, c := range t.Cores {
		n += len(c)
	}
	return n
}
