// Package litmus is the Px86 persistency-model conformance engine: a
// generator and compact text format for small concurrent persist litmus
// tests, an exact axiomatic allowed-outcome solver (internal/litmus/px86),
// and a harness that runs each test through the real simulator under
// deterministic schedule perturbation, classifying every observed NVM
// accept-stream outcome as allowed or forbidden.
package litmus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpKind is one litmus operation kind.
type OpKind int

const (
	// OpStore writes a value to an address slot.
	OpStore OpKind = iota
	// OpRMW atomically adds to an address slot; a region boundary.
	OpRMW
	// OpFence is a memory fence; a region boundary.
	OpFence
	// OpSync is a high-level synchronization point; a region boundary.
	OpSync
)

// Layouts map address slots to simulated addresses.
const (
	// LayoutSplit places each address slot on its own cache line.
	LayoutSplit = "split"
	// LayoutPacked packs every address slot into one cache line
	// (adjacent words), stressing line coalescing in the persist path.
	LayoutPacked = "packed"
)

// Op is one operation of one core's program.
type Op struct {
	Kind OpKind `json:"kind"`
	// Addr is the address-slot index (stores and RMWs only).
	Addr int `json:"addr,omitempty"`
	// Val is the stored value (OpStore) or addend (OpRMW). 0 means
	// auto-assign: the compiler gives every auto op a distinct
	// power-of-two value so observed words identify their writer.
	Val uint64 `json:"val,omitempty"`
}

// Test is one persist litmus test.
type Test struct {
	Name string `json:"name"`
	// NAddrs is the number of shared address slots (1–3).
	NAddrs int `json:"naddrs"`
	// Layout is LayoutSplit or LayoutPacked.
	Layout string `json:"layout"`
	// Cores holds each core's program (1–4 cores).
	Cores [][]Op `json:"cores"`
}

// Format limits. The generator stays within the ISSUE's 2–4 cores and
// 2–6 operations; the format accepts slightly wider shapes so regression
// corpora can pin single-core edge cases.
const (
	MaxCores      = 4
	MaxAddrs      = 3
	MaxOpsPerCore = 8
	MaxOps        = 24
)

// Validate checks the test's shape against the format limits.
func (t *Test) Validate() error {
	if !validName(t.Name) {
		return fmt.Errorf("litmus %q: name must be non-empty [A-Za-z0-9._-]", t.Name)
	}
	if len(t.Cores) < 1 || len(t.Cores) > MaxCores {
		return fmt.Errorf("litmus %s: %d cores (want 1..%d)", t.Name, len(t.Cores), MaxCores)
	}
	if t.NAddrs < 1 || t.NAddrs > MaxAddrs {
		return fmt.Errorf("litmus %s: %d address slots (want 1..%d)", t.Name, t.NAddrs, MaxAddrs)
	}
	if t.Layout != LayoutSplit && t.Layout != LayoutPacked {
		return fmt.Errorf("litmus %s: layout %q (want %s|%s)", t.Name, t.Layout, LayoutSplit, LayoutPacked)
	}
	total := 0
	for ci, ops := range t.Cores {
		if len(ops) == 0 || len(ops) > MaxOpsPerCore {
			return fmt.Errorf("litmus %s: core %d has %d ops (want 1..%d)", t.Name, ci, len(ops), MaxOpsPerCore)
		}
		for oi, op := range ops {
			switch op.Kind {
			case OpStore, OpRMW:
				if op.Addr < 0 || op.Addr >= t.NAddrs {
					return fmt.Errorf("litmus %s: core %d op %d: address slot %d out of range", t.Name, ci, oi, op.Addr)
				}
			case OpFence, OpSync:
				if op.Addr != 0 || op.Val != 0 {
					return fmt.Errorf("litmus %s: core %d op %d: barrier carries operands", t.Name, ci, oi)
				}
			default:
				return fmt.Errorf("litmus %s: core %d op %d: unknown kind %d", t.Name, ci, oi, op.Kind)
			}
		}
		total += len(ops)
	}
	if total > MaxOps {
		return fmt.Errorf("litmus %s: %d ops total (max %d)", t.Name, total, MaxOps)
	}
	return nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Encode renders the test in the canonical text format:
//
//	litmus mp-fence
//	cores 2 addrs 2 layout split
//	p0: st0 fe st1
//	p1: st0=5 rmw1 sy
//
// Tokens: st<slot>[=<val>] store, rmw<slot>[=<addend>] atomic add,
// fe fence, sy sync. Decode(Encode(t)) round-trips exactly.
func Encode(t *Test) string {
	var b strings.Builder
	fmt.Fprintf(&b, "litmus %s\n", t.Name)
	fmt.Fprintf(&b, "cores %d addrs %d layout %s\n", len(t.Cores), t.NAddrs, t.Layout)
	for ci, ops := range t.Cores {
		fmt.Fprintf(&b, "p%d:", ci)
		for _, op := range ops {
			b.WriteByte(' ')
			b.WriteString(encodeOp(op))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func encodeOp(op Op) string {
	switch op.Kind {
	case OpStore, OpRMW:
		mn := "st"
		if op.Kind == OpRMW {
			mn = "rmw"
		}
		s := mn + strconv.Itoa(op.Addr)
		if op.Val != 0 {
			s += "=" + strconv.FormatUint(op.Val, 10)
		}
		return s
	case OpFence:
		return "fe"
	default:
		return "sy"
	}
}

// EncodeCorpus renders tests back to back, separated by blank lines.
func EncodeCorpus(tests []*Test) string {
	parts := make([]string, len(tests))
	for i, t := range tests {
		parts[i] = Encode(t)
	}
	return strings.Join(parts, "\n")
}

// Decode parses one test in the Encode format. Blank lines and lines
// starting with '#' are ignored.
func Decode(data string) (*Test, error) {
	tests, err := DecodeCorpus(data)
	if err != nil {
		return nil, err
	}
	if len(tests) != 1 {
		return nil, fmt.Errorf("litmus: expected exactly one test, got %d", len(tests))
	}
	return tests[0], nil
}

// DecodeCorpus parses a sequence of tests. Each test starts at a
// "litmus <name>" line; names must be unique within the corpus.
func DecodeCorpus(data string) ([]*Test, error) {
	var tests []*Test
	var cur *Test
	wantCores := -1
	flush := func() error {
		if cur == nil {
			return nil
		}
		if len(cur.Cores) != wantCores {
			return fmt.Errorf("litmus %s: header declares %d cores, found %d programs", cur.Name, wantCores, len(cur.Cores))
		}
		if err := cur.Validate(); err != nil {
			return err
		}
		tests = append(tests, cur)
		cur = nil
		return nil
	}
	for ln, raw := range strings.Split(data, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "litmus":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("litmus: line %d: want \"litmus <name>\"", ln+1)
			}
			cur = &Test{Name: fields[1]}
			wantCores = -1
		case cur == nil:
			return nil, fmt.Errorf("litmus: line %d: content before \"litmus <name>\" header", ln+1)
		case fields[0] == "cores":
			if wantCores != -1 {
				return nil, fmt.Errorf("litmus %s: line %d: duplicate cores line", cur.Name, ln+1)
			}
			if len(fields) != 6 || fields[2] != "addrs" || fields[4] != "layout" {
				return nil, fmt.Errorf("litmus %s: line %d: want \"cores <n> addrs <k> layout <split|packed>\"", cur.Name, ln+1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("litmus %s: line %d: bad core count %q", cur.Name, ln+1, fields[1])
			}
			k, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("litmus %s: line %d: bad address count %q", cur.Name, ln+1, fields[3])
			}
			wantCores = n
			cur.NAddrs = k
			cur.Layout = fields[5]
		default:
			if wantCores == -1 {
				return nil, fmt.Errorf("litmus %s: line %d: program before cores line", cur.Name, ln+1)
			}
			label := fmt.Sprintf("p%d:", len(cur.Cores))
			if fields[0] != label {
				return nil, fmt.Errorf("litmus %s: line %d: want program label %q, got %q", cur.Name, ln+1, label, fields[0])
			}
			if len(fields) == 1 {
				return nil, fmt.Errorf("litmus %s: line %d: empty program", cur.Name, ln+1)
			}
			ops := make([]Op, 0, len(fields)-1)
			for _, tok := range fields[1:] {
				op, err := decodeOp(tok)
				if err != nil {
					return nil, fmt.Errorf("litmus %s: line %d: %v", cur.Name, ln+1, err)
				}
				ops = append(ops, op)
			}
			cur.Cores = append(cur.Cores, ops)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(tests) == 0 {
		return nil, fmt.Errorf("litmus: no tests found")
	}
	seen := make(map[string]bool, len(tests))
	for _, t := range tests {
		if seen[t.Name] {
			return nil, fmt.Errorf("litmus: duplicate test name %q", t.Name)
		}
		seen[t.Name] = true
	}
	return tests, nil
}

func decodeOp(tok string) (Op, error) {
	switch tok {
	case "fe":
		return Op{Kind: OpFence}, nil
	case "sy":
		return Op{Kind: OpSync}, nil
	}
	var kind OpKind
	var rest string
	switch {
	case strings.HasPrefix(tok, "rmw"):
		kind, rest = OpRMW, tok[3:]
	case strings.HasPrefix(tok, "st"):
		kind, rest = OpStore, tok[2:]
	default:
		return Op{}, fmt.Errorf("unknown op %q", tok)
	}
	slotStr, valStr, hasVal := strings.Cut(rest, "=")
	slot, err := strconv.Atoi(slotStr)
	if err != nil || slot < 0 {
		return Op{}, fmt.Errorf("bad address slot in %q", tok)
	}
	op := Op{Kind: kind, Addr: slot}
	if hasVal {
		v, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil || v == 0 {
			return Op{}, fmt.Errorf("bad value in %q (explicit values are nonzero decimals)", tok)
		}
		op.Val = v
	}
	return op, nil
}

// Names returns the corpus's test names, sorted (used by CLI listings).
func Names(tests []*Test) []string {
	names := make([]string, len(tests))
	for i, t := range tests {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
