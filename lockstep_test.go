package ppa

import (
	"encoding/json"
	"testing"
)

// TestLockstepCleanAllWorkloads runs every workload profile under the
// differential oracle on the PPA scheme: the machine and the golden model
// must agree on every committed instruction, and the persist-ordering
// checker must see every barrier drain. This is the "lockstep clean on all
// seed workloads" half of the oracle gate.
func TestLockstepCleanAllWorkloads(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{App: app, Scheme: SchemePPA, InstsPerThread: 2000, Lockstep: true})
			if err != nil {
				t.Fatalf("lockstep: %v", err)
			}
			if res.Cycles == 0 {
				t.Fatal("no cycles simulated")
			}
		})
	}
}

// TestLockstepCleanAcrossSchemes runs the oracle over every comparison
// scheme: the commit-stream check applies to all of them, and the persist
// checker must not raise false alarms on schemes with different durability
// paths (sync persists, redo logging, flush-on-failure, no persistence).
func TestLockstepCleanAcrossSchemes(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			if _, err := Run(RunConfig{App: "mcf", Scheme: s, InstsPerThread: 3000, Lockstep: true}); err != nil {
				t.Fatalf("lockstep on %s: %v", s, err)
			}
		})
	}
}

// TestLockstepCrashRecovery crashes an oracle-carrying run and demands the
// post-recovery checks engage and come back clean, through the resumed run.
func TestLockstepCrashRecovery(t *testing.T) {
	rc := RunConfig{App: "gcc", Scheme: SchemePPA, InstsPerThread: 6000, Lockstep: true}
	out, err := RunWithFailure(rc, 4000)
	if err != nil {
		t.Fatalf("run with failure: %v", err)
	}
	if out.CompletedBeforeFailure {
		t.Fatal("workload completed before cycle 4000; failure never struck")
	}
	if !out.OracleChecked {
		t.Fatal("oracle recovery check did not engage")
	}
	if out.OracleViolation != "" {
		t.Fatalf("oracle violation on healthy simulator: %s", out.OracleViolation)
	}
	if !out.Consistent || !out.ArchConsistent {
		t.Fatalf("healthy recovery inconsistent: %+v", out)
	}
	if out.ResumedResult == nil {
		t.Fatal("no resumed result")
	}
}

// TestMutationGate is the CI oracle gate: every seeded single-site bug must
// be caught by the lockstep oracle or the crash-consistency checks, with no
// false alarms on the unmutated simulator.
func TestMutationGate(t *testing.T) {
	rep, err := RunMutationCampaign(MutationCampaignConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BaselineClean {
		t.Fatalf("false alarm on unmutated simulator: %s", rep.BaselineDetail)
	}
	for _, o := range rep.Outcomes {
		if o.Caught {
			t.Logf("caught %-38s by %-14s %s", o.Bug.ID, o.CaughtBy, o.Detail)
		}
	}
	if !rep.AllCaught() {
		t.Fatalf("%s", rep.String())
	}
}

// TestMutationCampaignDeterministic runs the same campaign twice and
// requires byte-identical JSON reports — divergence details, catch sites,
// and failure cycles included. This is what makes a gate failure in CI
// reproducible verbatim on a laptop.
func TestMutationCampaignDeterministic(t *testing.T) {
	cc := MutationCampaignConfig{App: "gcc", InstsPerThread: 4000, FailPoints: 3, Seed: 7}
	run := func() []byte {
		rep, err := RunMutationCampaign(cc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("campaign reports differ between identical runs:\n%s\n%s", a, b)
	}
}

// TestTortureLockstepDeterministic runs an oracle-checked torture sweep
// twice from one seed and requires byte-identical reports, covering the
// torture path's oracle wiring (divergences as violations, the
// post-recovery image check) as well as the sweep's own determinism.
func TestTortureLockstepDeterministic(t *testing.T) {
	rc := RunConfig{App: "mcf", Scheme: SchemePPA, InstsPerThread: 4000, Lockstep: true}
	points := TorturePoints(11, 6, 2000, 12000)
	run := func() []byte {
		rep, err := RunTorture(rc, points, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("torture reports differ between identical runs:\n%s\n%s", a, b)
	}
	var rep TortureReport
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("oracle-checked torture sweep violated on healthy simulator: %+v", rep.Violations[0])
	}
}

// TestVerifyConsistencyRate pins the VerifyApp accounting fix: the
// consistency rate is over interrupted trials only, so trials scheduled
// after completion can no longer inflate it.
func TestVerifyConsistencyRate(t *testing.T) {
	rep, err := VerifyAppOpts(VerifyOptions{
		App: "gcc", Scheme: SchemePPA, InstsPerThread: 8000, Trials: 4, Seed: 99, Lockstep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trials != rep.Completed+rep.Interrupted {
		t.Fatalf("trials %d != completed %d + interrupted %d", rep.Trials, rep.Completed, rep.Interrupted)
	}
	if rep.Consistent > rep.Interrupted {
		t.Fatalf("consistent %d exceeds interrupted %d: post-completion trials are being counted again",
			rep.Consistent, rep.Interrupted)
	}
	if !rep.OK() || rep.ConsistencyRate() != 1 {
		t.Fatalf("PPA verification failed: %s (rate %.2f)", rep, rep.ConsistencyRate())
	}
	if rep.Interrupted > 0 && rep.OracleChecked != rep.Interrupted {
		t.Fatalf("oracle checked %d of %d interrupted trials", rep.OracleChecked, rep.Interrupted)
	}

	// An all-completed campaign proves nothing and must say so: rate 1 by
	// convention, but zero consistent trials — not Trials many.
	empty := &VerifyReport{Trials: 3, Completed: 3}
	if empty.ConsistencyRate() != 1 || empty.Consistent != 0 {
		t.Fatalf("empty campaign accounting wrong: %+v", empty)
	}
}

// TestRenamePartitionLiveMachine steps a real machine and checks the
// free/CRT/deferred/in-flight partition of every core's physical register
// file at cycle boundaries — the property test's invariant, on the actual
// pipeline's rename traffic instead of a modeled stream.
func TestRenamePartitionLiveMachine(t *testing.T) {
	sys, err := NewSystem(RunConfig{App: "mcf", Scheme: SchemePPA, InstsPerThread: 6000})
	if err != nil {
		t.Fatal(err)
	}
	for !sys.Done() {
		done, err := sys.RunUntil(sys.Cycle() + 500)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		for i, core := range sys.Cores() {
			if perr := core.CheckRenamePartition(); perr != nil {
				t.Fatalf("core %d at cycle %d: %v", i, sys.Cycle(), perr)
			}
		}
		if done {
			break
		}
	}
}

// TestSeededBugRegistry sanity-checks the registry the gate iterates.
func TestSeededBugRegistry(t *testing.T) {
	bugs := SeededBugs()
	if len(bugs) != 14 {
		t.Fatalf("%d seeded bugs, want 14", len(bugs))
	}
	seen := map[string]bool{}
	for _, b := range bugs {
		if b.ID == "" || b.Site == "" || b.Description == "" {
			t.Fatalf("incomplete bug entry: %+v", b)
		}
		if seen[b.ID] {
			t.Fatalf("duplicate bug id %s", b.ID)
		}
		seen[b.ID] = true
	}
}
