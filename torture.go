package ppa

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"ppa/internal/checkpoint"
	"ppa/internal/fault"
	"ppa/internal/forensics"
	"ppa/internal/multicore"
	"ppa/internal/obs"
	"ppa/internal/oracle"
	"ppa/internal/persist"
	"ppa/internal/recovery"
	"ppa/internal/sweep"
)

// This file implements the crash-consistency torture harness: an
// adversarial sweep over (failure cycle × fault kind × fault parameter)
// that crashes the machine, damages what the crash left behind, and then
// demands that recovery either converge to a consistent committed prefix
// or refuse the damaged checkpoint with a typed error. Anything else —
// silent use of a corrupt image, a spurious refusal of an intact one, a
// committed-prefix word lost — is a violation, shrunk to a minimal
// reproducer for the bug report.

// Fault re-exports the fault model for torture points.
type Fault = fault.Fault

// FaultKind re-exports the fault kind enumeration.
type FaultKind = fault.Kind

// Re-exported fault kinds (see internal/fault for semantics).
const (
	FaultNone           = fault.None
	FaultTornCheckpoint = fault.TornCheckpoint
	FaultNestedOutage   = fault.NestedOutage
	FaultBitFlip        = fault.BitFlip
	FaultTornWord       = fault.TornWord
	FaultDropTail       = fault.DropTail
)

// TorturePoint is one injection experiment: run the workload to Cycle, cut
// power there, apply the fault, and recover.
type TorturePoint struct {
	// Cycle is the power-failure cycle.
	Cycle uint64 `json:"cycle"`
	// Fault is what goes wrong at (or after) the failure.
	Fault Fault `json:"fault"`
	// Depth is how many additional outages strike during recovery itself
	// (NestedOutage only; each re-enters recovery from the top).
	Depth int `json:"depth,omitempty"`
}

// String renders the point compactly for logs.
func (p TorturePoint) String() string {
	if p.Depth > 0 {
		return fmt.Sprintf("cycle=%d %v depth=%d", p.Cycle, p.Fault, p.Depth)
	}
	return fmt.Sprintf("cycle=%d %v", p.Cycle, p.Fault)
}

// TortureOutcome is the verdict of one torture point.
type TortureOutcome struct {
	Point TorturePoint `json:"point"`
	// CompletedBeforeFailure reports the workload finished before Cycle, so
	// no failure struck (the point degenerates to a plain run).
	CompletedBeforeFailure bool `json:"completed_before_failure,omitempty"`
	// Injected reports the fault actually took effect (a torn-checkpoint
	// budget genuinely tore the dump; a byte-level fault changed bytes).
	Injected bool `json:"injected"`
	// Detected reports recovery refused the checkpoint with a typed error.
	Detected bool `json:"detected"`
	// DetectedAs carries the typed error's text when Detected.
	DetectedAs string `json:"detected_as,omitempty"`
	// Recovered reports recovery completed (possibly after nested outages).
	Recovered bool `json:"recovered"`
	// RecoveryAttempts counts entries into the recovery protocol (1 for an
	// undisturbed recovery; +1 per nested outage).
	RecoveryAttempts int `json:"recovery_attempts"`
	// Inconsistencies counts committed-prefix words with wrong NVM values
	// after a successful recovery.
	Inconsistencies int `json:"inconsistencies"`
	// Violation is empty for a pass, else the contract breach.
	Violation string `json:"violation,omitempty"`
}

// TortureReport aggregates a sweep.
type TortureReport struct {
	Points                 int            `json:"points"`
	CompletedBeforeFailure int            `json:"completed_before_failure"`
	Injected               int            `json:"injected"`
	Detected               int            `json:"detected"`
	Recovered              int            `json:"recovered"`
	ByKind                 map[string]int `json:"by_kind"`
	// Violations holds every failing outcome, in sweep order.
	Violations []*TortureOutcome `json:"violations,omitempty"`
}

// TorturePointsChecked generates torture points like TorturePoints but
// rejects an empty failure-cycle range instead of silently widening it.
// CLI-facing callers want this loud path (ppatorture wraps the error as a
// flag error); harness code with known-good constants may keep the clamping
// TorturePoints.
func TorturePointsChecked(seed int64, n int, minCycle, maxCycle uint64) ([]TorturePoint, error) {
	if maxCycle <= minCycle {
		return nil, fmt.Errorf("ppa: torture failure-cycle range [%d, %d) is empty: maxCycle must exceed minCycle", minCycle, maxCycle)
	}
	return TorturePoints(seed, n, minCycle, maxCycle), nil
}

// TorturePoints deterministically generates n torture points from a seed,
// with failure cycles uniform in [minCycle, maxCycle) and the fault kinds
// cycled so every class gets even coverage. An empty cycle range is clamped
// to the single cycle minCycle; use TorturePointsChecked where a silently
// rewritten range would hide a configuration mistake.
func TorturePoints(seed int64, n int, minCycle, maxCycle uint64) []TorturePoint {
	if maxCycle <= minCycle {
		maxCycle = minCycle + 1
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]TorturePoint, 0, n)
	for i := 0; i < n; i++ {
		p := TorturePoint{
			Cycle: minCycle + uint64(rng.Int63n(int64(maxCycle-minCycle))),
			Fault: Fault{
				Kind:  fault.Kinds[i%len(fault.Kinds)],
				Param: uint64(rng.Int63()),
				Seed:  rng.Int63(),
			},
		}
		if p.Fault.Kind == fault.NestedOutage {
			p.Depth = 1 + rng.Intn(3)
		}
		points = append(points, p)
	}
	return points
}

// tornEnergyUJ converts a TornCheckpoint Param (permille of the full
// dump's energy demand, reduced mod 1000 so the dump always tears) into an
// absolute reservoir capacity for CrashOptions.
func tornEnergyUJ(param uint64, fullBytes int) float64 {
	permille := param % 1000
	uj := float64(fullBytes) * checkpoint.EnergyPerByteNJ / 1e3 * float64(permille) / 1000
	if uj <= 0 {
		// A zero reservoir still "exists": hand CrashWithOptions a budget
		// too small for a single byte rather than disabling injection.
		return checkpoint.EnergyPerByteNJ / 2e3
	}
	return uj
}

// RunTorturePoint executes one torture point on a fresh machine and
// returns its verdict. Simulation-level failures (config errors, model
// bugs) surface as the error; contract breaches surface in
// Outcome.Violation.
func RunTorturePoint(rc RunConfig, p TorturePoint) (*TortureOutcome, error) {
	_, sch, _, err := rc.resolve()
	if err != nil {
		return nil, err
	}
	scheme := persist.SchemeFor(sch)
	// Transaction schemes recover from their own durable log, not the
	// checkpointed CSQ, and their contract point is the last region-commit
	// marker rather than the committed prefix.
	txn := scheme.Contract() == persist.RecoverTxnBoundary
	sys, err := NewSystem(rc)
	if err != nil {
		return nil, err
	}
	hub := rc.Obs
	if hub == nil {
		hub = DefaultObs
	}
	inj := fault.NewInjector(hub)
	out := &TortureOutcome{Point: p}

	// Flight recorder: tee the NVM accept stream into a bounded tail and, at
	// the instant a violation fires, snapshot it together with the trace
	// ring, the metrics registry, and the oracle's divergence report.
	var ftail *forensics.AcceptTail
	if rc.Forensics != nil {
		ftail = forensics.NewAcceptTail(forensics.DefaultAcceptTail)
		sys.Device().AddAcceptObserver(ftail.Observe)
	}
	capture := func(kind string, divergence json.RawMessage) {
		if rc.Forensics == nil || out.Violation == "" {
			return
		}
		b := &forensics.Bundle{
			Meta: forensics.Meta{
				Kind:         kind,
				Reason:       out.Violation,
				App:          rc.App,
				Scheme:       string(rc.Scheme),
				Point:        p.String(),
				CaptureCycle: sys.Cycle(),
			},
			Divergence: divergence,
		}
		forensics.Snapshot(hub, ftail, b)
		_ = rc.Forensics.Capture(b)
	}

	done, err := sys.RunUntil(p.Cycle)
	if err != nil {
		// A lockstep divergence is a verdict about the machine, not a
		// harness failure: report it as the point's violation so an
		// oracle-checked sweep keeps going and aggregates it.
		var de *oracle.DivergenceError
		if errors.As(err, &de) {
			out.Violation = err.Error()
			div, _ := json.Marshal(de.Report)
			capture(forensics.KindLockstepDivergence, div)
			return out, nil
		}
		return nil, err
	}
	if done {
		out.CompletedBeforeFailure = true
		return out, nil
	}

	// Cut power. A torn-checkpoint fault maps its permille parameter onto
	// an undersized residual-energy reservoir; sizing uses a pre-crash
	// capture of the same state the dump FSM will stream.
	var opt multicore.CrashOptions
	if p.Fault.Kind == fault.TornCheckpoint {
		full := 0
		for i, c := range sys.Cores() {
			im := checkpoint.Capture(c)
			im.CoreID = i
			full += len(im.Encode())
		}
		opt.CheckpointEnergyUJ = tornEnergyUJ(p.Fault.Param, full)
	}
	rep := sys.CrashWithOptions(opt)
	dev := sys.Device()
	if rep.Torn {
		out.Injected = true
		inj.Injected(p.Fault, p.Cycle)
	}

	// NVM-level damage to the persisted checkpoint region.
	if p.Fault.ByteLevel() {
		if dev.MutateCheckpoint(p.Fault.Mutate) {
			out.Injected = true
			inj.Injected(p.Fault, p.Cycle)
		}
	}

	// Recovery, re-entered from the top after each nested outage. The
	// protocol must converge: either a completed recovery or a typed
	// refusal of a damaged checkpoint.
	nestedLeft := 0
	if p.Fault.Kind == fault.NestedOutage {
		nestedLeft = p.Depth
		if nestedLeft <= 0 {
			nestedLeft = 1
		}
	}
	var images []*checkpoint.Image
	var points []int
	for {
		out.RecoveryAttempts++
		if out.RecoveryAttempts > nestedLeft+4 {
			out.Violation = "recovery did not converge"
			capture(forensics.KindTortureViolation, nil)
			return out, nil
		}
		var lerr error
		images, lerr = recovery.LoadImages(dev)
		if lerr != nil {
			out.Detected = true
			out.DetectedAs = lerr.Error()
			if !recoveryErrTyped(lerr) {
				out.Violation = fmt.Sprintf("untyped recovery error: %v", lerr)
			}
			break
		}
		if nestedLeft > 0 {
			nestedLeft--
			out.Injected = true
			inj.Injected(p.Fault, p.Cycle)
			if txn {
				// Power fails again mid-recovery: log recovery is idempotent
				// (truncate then roll back or replay), so the interrupted pass
				// leaves a log the re-entered protocol handles from the top.
				if _, rerr := scheme.Recover(dev, len(sys.Cores())); rerr != nil {
					out.Detected = true
					out.DetectedAs = rerr.Error()
				}
			} else {
				// Power fails again mid-replay: apply only the first Param
				// entries of each CSQ, then lose the machine and re-enter.
				for _, im := range images {
					n := 0
					if len(im.CSQ) > 0 {
						n = int(p.Fault.Param % uint64(len(im.CSQ)+1))
					}
					if _, rerr := recovery.ReplayN(dev, im, n); rerr != nil {
						out.Detected = true
						out.DetectedAs = rerr.Error()
						break
					}
				}
			}
			if out.Detected {
				break
			}
			continue
		}
		var rerr error
		if txn {
			// Validate the JIT dump (damage must surface as a detection) but
			// reconstruct the image from the scheme's own durable log.
			for _, im := range images {
				if rerr = recovery.ValidateImage(im); rerr != nil {
					break
				}
			}
			if rerr == nil {
				points, rerr = scheme.Recover(dev, len(sys.Cores()))
			}
		} else {
			for _, im := range images {
				prog := sys.Cores()[im.CoreID].Program()
				if _, rerr = recovery.Recover(dev, im, prog); rerr != nil {
					break
				}
			}
		}
		if rerr != nil {
			out.Detected = true
			out.DetectedAs = rerr.Error()
			if !recoveryErrTyped(rerr) {
				out.Violation = fmt.Sprintf("untyped recovery error: %v", rerr)
			}
			break
		}
		out.Recovered = true
		break
	}

	if out.Detected {
		inj.Detected(p.Fault, p.Cycle)
	}
	var recoveryDiv json.RawMessage
	switch {
	case out.Violation != "":
		// Already established (non-convergence or untyped error).
	case out.Detected && !out.Injected:
		out.Violation = fmt.Sprintf("spurious detection of an intact checkpoint: %s", out.DetectedAs)
	case out.Recovered && out.Injected && p.Fault.Corrupting():
		out.Violation = "silently recovered a corrupt checkpoint"
	case out.Recovered:
		// Verify the recovery contract for every core: NVM must hold the
		// golden state at the committed prefix (checkpoint-replay schemes)
		// or at the last region-commit marker (transaction schemes).
		checkAt := make([]int, len(sys.Cores()))
		for _, im := range images {
			checkAt[im.CoreID] = im.Committed
		}
		if txn && points != nil {
			checkAt = points
		}
		for id, at := range checkAt {
			prog := sys.Cores()[id].Program()
			out.Inconsistencies += recovery.CountInconsistencies(dev, prog, at)
		}
		if out.Inconsistencies > 0 {
			out.Violation = fmt.Sprintf("committed-prefix violation: %d words lost", out.Inconsistencies)
			break
		}
		// The oracle's independent verdict on the same recovery: the NVM
		// image must equal the golden model's memory at each core's contract
		// point, and the recovery points must be prefixes the oracle checked.
		if m := sys.Oracle(); m != nil {
			var oerr error
			if txn {
				oerr = m.CheckRecoveredAt(dev.Image(), checkAt)
			} else {
				oerr = m.CheckRecovered(dev.Image(), checkAt)
			}
			if oerr != nil {
				out.Violation = oerr.Error()
				var de *oracle.DivergenceError
				if errors.As(oerr, &de) {
					recoveryDiv, _ = json.Marshal(de.Report)
				}
				break
			}
		}
		dev.ClearCheckpoint()
	}
	capture(forensics.KindTortureViolation, recoveryDiv)
	return out, nil
}

// recoveryErrTyped reports whether err belongs to recovery's typed
// detection taxonomy.
func recoveryErrTyped(err error) bool {
	return recovery.IsDetection(err)
}

// RunTorture sweeps every point on fresh machines, invoking onPoint (if
// non-nil) after each verdict, and aggregates the report. Counters
// "torture.points" and "torture.violations" accumulate on the run's hub.
func RunTorture(rc RunConfig, points []TorturePoint, onPoint func(*TortureOutcome)) (*TortureReport, error) {
	hub := rc.Obs
	if hub == nil {
		hub = DefaultObs
	}
	rep := &TortureReport{ByKind: make(map[string]int)}
	for _, p := range points {
		out, err := RunTorturePoint(rc, p)
		if err != nil {
			return rep, fmt.Errorf("torture point %v: %w", p, err)
		}
		rep.aggregate(hub, p, out, onPoint)
	}
	return rep, nil
}

// RunTortureParallel is RunTorture over a bounded worker pool. Every point
// runs on a fresh private machine, so points parallelize freely; each
// worker gets its own observability hub (RunConfig.Obs must not be shared
// across goroutines), and verdicts are aggregated in point order after the
// sweep — the report is byte-identical to RunTorture's for the same points,
// and onPoint still fires in sweep order. The main hub's "torture.points"
// and "torture.violations" counters tick live as workers finish points (so
// a served /metrics endpoint shows sweep progress), and when the sweep ends
// the per-worker hubs merge into the main hub in creation order — counter
// and histogram merging is commutative, so the merged totals are
// deterministic no matter which worker ran which point. workers <= 0 means
// GOMAXPROCS; workers == 1 is exactly the sequential sweep (including
// rc.Obs use, so trace-carrying hubs keep working). Cancelling ctx abandons
// the sweep.
func RunTortureParallel(ctx context.Context, rc RunConfig, points []TorturePoint, workers int, onPoint func(*TortureOutcome)) (*TortureReport, error) {
	workers = sweep.Workers(workers)
	if workers <= 1 || len(points) <= 1 {
		return RunTorture(rc, points, onPoint)
	}
	hub := rc.Obs
	if hub == nil {
		hub = DefaultObs
	}
	whs := make([]*obs.Hub, workers)
	hubs := make(chan *obs.Hub, workers)
	for i := range whs {
		whs[i] = NewObsHub(0)
		hubs <- whs[i]
	}
	livePoints := hub.Registry().Counter("torture.points")
	liveViolations := hub.Registry().Counter("torture.violations")
	outs, err := sweep.Map(ctx, workers, len(points), func(_ context.Context, i int) (*TortureOutcome, error) {
		wh := <-hubs
		defer func() { hubs <- wh }()
		prc := rc
		prc.Obs = wh
		out, perr := RunTorturePoint(prc, points[i])
		if perr != nil {
			return nil, fmt.Errorf("torture point %v: %w", points[i], perr)
		}
		livePoints.Inc()
		if out.Violation != "" {
			liveViolations.Inc()
		}
		return out, nil
	})
	// Fold the workers' simulator metrics (persist latency histograms,
	// region attribution, ...) into the main hub even when the sweep
	// aborted: a served registry should show whatever progress was made.
	for _, wh := range whs {
		hub.Merge(wh)
	}
	rep := &TortureReport{ByKind: make(map[string]int)}
	if err != nil {
		return rep, err
	}
	for i, out := range outs {
		// The hub counters already ticked live in the workers; pass a nil
		// hub so aggregate only builds the report.
		rep.aggregate(nil, points[i], out, onPoint)
	}
	return rep, nil
}

// AggregateTortureOutcomes assembles a report from per-point verdicts in
// sweep order through the same accounting path as RunTorture, so a caller
// that computed the outcomes elsewhere — the distributed sweep fabric's
// coordinator merging units that ran on remote workers — produces a report
// byte-identical to the single-process sweep's. outs[i] must be the verdict
// of points[i]. hub, when non-nil, receives the torture.points and
// torture.violations counter ticks (pass nil when those already ticked
// live, as the parallel and distributed sweeps do); onPoint fires per
// verdict in sweep order.
func AggregateTortureOutcomes(hub *obs.Hub, points []TorturePoint, outs []*TortureOutcome, onPoint func(*TortureOutcome)) (*TortureReport, error) {
	if len(points) != len(outs) {
		return nil, fmt.Errorf("ppa: %d outcomes for %d torture points", len(outs), len(points))
	}
	rep := &TortureReport{ByKind: make(map[string]int)}
	for i, out := range outs {
		if out == nil {
			return nil, fmt.Errorf("ppa: missing outcome for torture point %d (%v)", i, points[i])
		}
		rep.aggregate(hub, points[i], out, onPoint)
	}
	return rep, nil
}

// FilterTorturePointsByKind returns the subset of points whose fault kind
// is k, preserving sweep order — the one filter the CLI sweep spec
// supports, shared here so the distributed fabric derives exactly the same
// point list as ppatorture's -kind flag.
func FilterTorturePointsByKind(points []TorturePoint, k FaultKind) []TorturePoint {
	var kept []TorturePoint
	for _, p := range points {
		if p.Fault.Kind == k {
			kept = append(kept, p)
		}
	}
	return kept
}

// aggregate folds one verdict into the report and fires the per-point
// callback. It is the single accounting path for the sequential and
// parallel sweeps, which is what keeps their reports identical.
func (rep *TortureReport) aggregate(hub *obs.Hub, p TorturePoint, out *TortureOutcome, onPoint func(*TortureOutcome)) {
	rep.Points++
	rep.ByKind[p.Fault.Kind.String()]++
	if out.CompletedBeforeFailure {
		rep.CompletedBeforeFailure++
	}
	if out.Injected {
		rep.Injected++
	}
	if out.Detected {
		rep.Detected++
	}
	if out.Recovered {
		rep.Recovered++
	}
	if out.Violation != "" {
		rep.Violations = append(rep.Violations, out)
	}
	hub.Registry().Counter("torture.points").Inc()
	if out.Violation != "" {
		hub.Registry().Counter("torture.violations").Inc()
	}
	if onPoint != nil {
		onPoint(out)
	}
}

// ShrinkTorturePoint greedily minimizes a violating point: it repeatedly
// tries smaller failure cycles, parameters, and nesting depths, keeping
// any candidate that still violates, until no reduction reproduces the
// failure. The returned point is the minimal reproducer (the original if
// the violation never reproduces, e.g. a flaky model bug).
func ShrinkTorturePoint(rc RunConfig, p TorturePoint, minCycle uint64) (TorturePoint, error) {
	still := func(c TorturePoint) (bool, error) {
		out, err := RunTorturePoint(rc, c)
		if err != nil {
			return false, err
		}
		return out.Violation != "", nil
	}
	ok, err := still(p)
	if err != nil || !ok {
		return p, err
	}
	for iter := 0; iter < 64; iter++ {
		improved := false
		for _, cand := range shrinkCandidates(p, minCycle) {
			v, err := still(cand)
			if err != nil {
				return p, err
			}
			if v {
				p = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return p, nil
}

func shrinkCandidates(p TorturePoint, minCycle uint64) []TorturePoint {
	var cands []TorturePoint
	add := func(c TorturePoint) { cands = append(cands, c) }
	if p.Cycle > minCycle {
		c := p
		c.Cycle = minCycle + (p.Cycle-minCycle)/2
		add(c)
		c = p
		c.Cycle = p.Cycle - 1
		add(c)
	}
	if p.Fault.Param > 0 {
		c := p
		c.Fault.Param = p.Fault.Param / 2
		add(c)
		c = p
		c.Fault.Param = p.Fault.Param - 1
		add(c)
	}
	if p.Depth > 1 {
		c := p
		c.Depth = p.Depth - 1
		add(c)
	}
	if p.Fault.Seed/2 != 0 {
		// Seed 0 is the "unseeded" sentinel, so halving must never reach it:
		// seeds 1 and -1 (and any seed whose half rounds to zero) would
		// otherwise shrink onto a point that replays under a different fault
		// stream than the one that failed, breaking shrink determinism.
		c := p
		c.Fault.Seed = p.Fault.Seed / 2
		add(c)
	}
	return cands
}
