package ppa

import (
	"bytes"
	"testing"
)

func TestAppsPopulation(t *testing.T) {
	apps := Apps()
	if len(apps) != 41 {
		t.Fatalf("%d apps, the paper evaluates 41", len(apps))
	}
}

func TestSchemeConfigResolution(t *testing.T) {
	for _, s := range Schemes() {
		cfg, err := SchemeConfig(s)
		if err != nil {
			t.Errorf("%s: %v", s, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s, err)
		}
	}
	if _, err := SchemeConfig("bogus"); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestRunDefaults(t *testing.T) {
	res, err := Run(RunConfig{App: "gcc", InstsPerThread: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme.Kind.String() != "ppa" {
		t.Fatalf("default scheme %v", res.Scheme.Kind)
	}
	if res.Insts != 5000 {
		t.Fatalf("insts %d", res.Insts)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("missing app must error")
	}
	if _, err := Run(RunConfig{App: "nope"}); err == nil {
		t.Fatal("unknown app must error")
	}
	if _, err := Run(RunConfig{App: "gcc", Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestRunWithProfileOverride(t *testing.T) {
	p := WorkloadProfile{
		Name: "custom", Suite: "custom",
		LoadRatio: 0.2, StoreRatio: 0.1, BranchRatio: 0.1,
		DepDistance: 8, HotFraction: 0.9, HotBytes: 4096,
		WarmBytes: 1 << 20, FootprintBytes: 1 << 22,
		StackBytes: 256, Seed: 99,
	}
	res, err := Run(RunConfig{Profile: &p, Scheme: SchemeBaseline, InstsPerThread: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "custom" {
		t.Fatalf("workload %q", res.Workload)
	}
}

func TestCustomizeHook(t *testing.T) {
	small, err := Run(RunConfig{App: "hmmer", Scheme: SchemePPA, InstsPerThread: 8000,
		Customize: func(cfg *MachineConfig) {
			cfg.Pipeline.Rename.IntPhysRegs = 80
			cfg.Pipeline.Rename.FPPhysRegs = 80
		}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Run(RunConfig{App: "hmmer", Scheme: SchemePPA, InstsPerThread: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if small.AvgRegionLen() >= def.AvgRegionLen() {
		t.Fatalf("80/80 regions (%v) must be shorter than default (%v)",
			small.AvgRegionLen(), def.AvgRegionLen())
	}
}

func TestRunWithFailureMultiCore(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "fft", Scheme: SchemePPA, InstsPerThread: 6000}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Skip("finished before failure")
	}
	if !out.Consistent {
		t.Fatalf("multi-core recovery inconsistent: %d words", out.Inconsistencies)
	}
	if len(out.PerCore) != 8 {
		t.Fatalf("%d per-core outcomes", len(out.PerCore))
	}
	if out.ResumedResult == nil {
		t.Fatal("no resumed result")
	}
}

func TestRunWithFailureCompletesCleanly(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "gcc", Scheme: SchemePPA, InstsPerThread: 1000}, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CompletedBeforeFailure || !out.Consistent {
		t.Fatal("run should complete before such a late failure")
	}
}

// TestFailureSweepProperty crashes PPA at a sweep of cycles on a
// multi-threaded workload and requires consistency at every point.
func TestFailureSweepProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, fail := range []uint64{500, 2_000, 5_000, 9_000, 15_000, 22_000} {
		out, err := RunWithFailure(RunConfig{App: "water-ns", Scheme: SchemePPA, InstsPerThread: 4000}, fail)
		if err != nil {
			t.Fatalf("fail@%d: %v", fail, err)
		}
		if out.CompletedBeforeFailure {
			continue
		}
		if !out.Consistent {
			t.Fatalf("fail@%d: %d inconsistencies", fail, out.Inconsistencies)
		}
	}
}

// TestCapriCrashConsistency: Capri's battery-backed redo buffer makes it
// durable at store commit, so its NVM image must also hold the committed
// prefix after a crash (no replay needed).
func TestCapriCrashConsistency(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "sjeng", Scheme: SchemeCapri, InstsPerThread: 8000}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Skip("finished early")
	}
	if !out.Consistent {
		t.Fatalf("Capri inconsistent: %d words", out.Inconsistencies)
	}
}

func TestCheckpointSizeIsTiny(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "mcf", Scheme: SchemePPA, InstsPerThread: 10000}, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Skip("finished early")
	}
	// One core's encoded image stays within a few KB — six orders of
	// magnitude below eADR's flush requirement.
	if out.CheckpointBytes > 8<<10 {
		t.Fatalf("checkpoint %d bytes — should be tiny", out.CheckpointBytes)
	}
}

// TestSBGateCrashConsistency: the Section 6 alternative is also crash
// consistent — its gated store buffer is the (battery-backed) recovery
// log — it is just slower than PPA.
func TestSBGateCrashConsistency(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "lbm", Scheme: SchemeSBGate, InstsPerThread: 10000}, 15_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Skip("finished early")
	}
	if !out.Consistent {
		t.Fatalf("SB gating inconsistent: %d words", out.Inconsistencies)
	}
	if out.ResumedResult == nil {
		t.Fatal("no resumed result")
	}
}

// TestCrashDuringSyscallHandler exercises Section 5: a power failure in the
// middle of kernel-mode execution recovers exactly like user code — the
// handler resumes from the last commit point.
func TestCrashDuringSyscallHandler(t *testing.T) {
	// memcached profiles trap into the kernel regularly; sweep failure
	// points so several land inside handler bursts.
	for _, fail := range []uint64{3_000, 7_000, 12_000} {
		out, err := RunWithFailure(RunConfig{App: "r20w80", Scheme: SchemePPA, InstsPerThread: 8000}, fail)
		if err != nil {
			t.Fatalf("fail@%d: %v", fail, err)
		}
		if out.CompletedBeforeFailure {
			continue
		}
		if !out.Consistent {
			t.Fatalf("fail@%d: kernel-mode crash lost %d words", fail, out.Inconsistencies)
		}
	}
}

func TestCharacterize(t *testing.T) {
	c, err := Characterize("mcf", 8000)
	if err != nil {
		t.Fatal(err)
	}
	if c.App != "mcf" || c.Suite != "CPU2006" || c.Threads != 1 {
		t.Fatalf("identity wrong: %+v", c)
	}
	if c.LoadPct < 20 || c.LoadPct > 50 {
		t.Fatalf("load%% %v", c.LoadPct)
	}
	if c.IPC <= 0 || c.PPASlowdown < 0.99 {
		t.Fatalf("measurements wrong: IPC %v slow %v", c.IPC, c.PPASlowdown)
	}
	if c.RegionLen <= 0 || c.RegionStores <= 0 {
		t.Fatal("region characterization missing")
	}
	if _, err := Characterize("bogus", 100); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestMachineConfigJSON(t *testing.T) {
	tmpl, err := DefaultMachineConfigJSON(8, SchemePPA)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl) == 0 {
		t.Fatal("empty template")
	}

	customize, err := MachineCustomizer([]byte(`{"NVM": {"WPQEntries": 4}, "Pipeline": {"ROBSize": 96}}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{App: "gcc", Scheme: SchemePPA, InstsPerThread: 3000, Customize: customize})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no run")
	}

	// The override must actually apply: shrink the ROB drastically and the
	// run slows down.
	tiny, err := MachineCustomizer([]byte(`{"Pipeline": {"ROBSize": 8}}`))
	if err != nil {
		t.Fatal(err)
	}
	small, err := Run(RunConfig{App: "gcc", Scheme: SchemeBaseline, InstsPerThread: 5000, Customize: tiny})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(RunConfig{App: "gcc", Scheme: SchemeBaseline, InstsPerThread: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if small.Cycles <= full.Cycles {
		t.Fatalf("ROB-8 (%d cycles) should be slower than ROB-224 (%d)", small.Cycles, full.Cycles)
	}

	if _, err := MachineCustomizer([]byte(`{bad json`)); err == nil {
		t.Fatal("bad JSON must error")
	}
	if _, err := MachineCustomizerFromFile("/nonexistent/x.json"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestExportImportTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportTrace(&buf, "gcc", 2000, 0); err != nil {
		t.Fatal(err)
	}
	prog, err := ImportTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "gcc" || prog.Len() != 2000 {
		t.Fatalf("trace %q/%d", prog.Name, prog.Len())
	}
	if err := ExportTrace(&buf, "fft", 100, 99); err == nil {
		t.Fatal("out-of-range thread id must error")
	}
	if err := ExportTrace(&buf, "bogus", 100, 0); err == nil {
		t.Fatal("unknown app must error")
	}
}

func TestRunInOrder(t *testing.T) {
	res, err := RunInOrder("sjeng", 8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts != 8000 || res.Regions == 0 {
		t.Fatalf("in-order run wrong: %+v", res)
	}
	if res.Slowdown < 1.0 || res.Slowdown > 1.5 {
		t.Fatalf("in-order PPA slowdown %.3f out of band", res.Slowdown)
	}
	if _, err := RunInOrder("bogus", 100); err == nil {
		t.Fatal("unknown app must error")
	}
}

// TestEADRCrashFlushes: eADR's defining mechanism — on power failure the
// battery flushes the entire dirty hierarchy, so it is crash consistent
// but pays for megabytes where PPA pays for a couple of kilobytes.
func TestEADRCrashFlushes(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "lbm", Scheme: SchemeEADR, InstsPerThread: 15000}, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Skip("finished early")
	}
	if !out.Consistent {
		t.Fatalf("eADR flush-on-failure must be consistent: %d lost", out.Inconsistencies)
	}
	if out.FlushedBytes == 0 {
		t.Fatal("eADR must have flushed dirty data")
	}
	// The energy contrast: PPA checkpoints a fixed couple of KB; eADR
	// flushes its working set's dirty bytes.
	ppaOut, err := RunWithFailure(RunConfig{App: "lbm", Scheme: SchemePPA, InstsPerThread: 15000}, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if ppaOut.FlushedBytes != 0 {
		t.Fatal("PPA flushes nothing on failure")
	}
	if ppaOut.CheckpointBytes >= out.FlushedBytes {
		t.Fatalf("PPA checkpoint (%dB) should be far below eADR's flush (%dB)",
			ppaOut.CheckpointBytes, out.FlushedBytes)
	}
	t.Logf("eADR flushed %d bytes; PPA checkpointed %d bytes", out.FlushedBytes, ppaOut.CheckpointBytes)
}

func TestTables(t *testing.T) {
	if rows := Table1(); len(rows) != 2 || rows[1].Mechanism != "PPA" || rows[1].ReachesNVM == false && rows[0].ReachesNVM == true {
		t.Fatalf("Table 1 wrong: %+v", rows)
	}
	if s := Table2(); len(s) < 100 {
		t.Fatalf("Table 2 rendering too short: %q", s)
	}
	rows3 := Table3()
	if len(rows3) != 9 {
		t.Fatalf("Table 3 has %d rows, want 9", len(rows3))
	}
	for _, r := range rows3 {
		if r.FootprintMB == 0 || r.Description == "" {
			t.Fatalf("Table 3 row incomplete: %+v", r)
		}
	}
	if rows4 := Table4(); len(rows4) != 3 {
		t.Fatalf("Table 4 rows: %d", len(rows4))
	}
	t5 := Table5()
	if len(t5.Rows) != 3 || t5.WorstCaseBytes < 1700 || t5.WorstCaseBytes > 1900 {
		t.Fatalf("Table 5 wrong: %+v", t5)
	}
	if rows6 := Table6(); len(rows6) != 4 || rows6[3].Scheme != "PPA" {
		t.Fatalf("Table 6 wrong")
	}
	// PPA dominates Table 6: no recompilation, transparent, DRAM cache and
	// multi-MC enabled, low complexity and energy.
	ppaRow := Table6()[3]
	if ppaRow.Recompilation || !ppaRow.Transparency || !ppaRow.EnableDRAMCache || !ppaRow.EnableMultiMCs {
		t.Fatalf("PPA's Table 6 row lost its wins: %+v", ppaRow)
	}
}

func TestTable4ArealHeadline(t *testing.T) {
	f := Table4ArealOverhead()
	if f < 0.00004 || f > 0.00007 {
		t.Fatalf("areal overhead %.6f, paper 0.005%%", f)
	}
}

func TestVerifyApp(t *testing.T) {
	report, err := VerifyApp("gcc", SchemePPA, 8000, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("PPA verification failed: %s", report)
	}
	if report.Trials != 4 {
		t.Fatalf("trials %d", report.Trials)
	}
	if report.String() == "" {
		t.Fatal("empty report string")
	}

	base, err := VerifyApp("mcf", SchemeBaseline, 12000, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if base.OK() && base.Completed < base.Trials {
		t.Fatal("the baseline should fail verification when interrupted")
	}
}
