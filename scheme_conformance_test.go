package ppa

import (
	"testing"

	"ppa/internal/persist"
)

// TestSchemeConformanceMatrix is the cross-scheme conformance matrix: every
// persistence scheme in the zoo runs the same three-leg gauntlet, with the
// assertions keyed to the scheme's declared recovery contract rather than to
// its name — a scheme added behind the PersistScheme interface is conformance
// tested by construction.
//
//   - Leg 1: an uninterrupted lockstep run. The commit-stream oracle applies
//     to every scheme; schemes whose image is built from the accept stream
//     also get the final durable-image check.
//
//   - Leg 2: six crash points spread across the run, each recovered under
//     the scheme's own protocol. Contract-carrying schemes (committed-prefix
//     and transaction-boundary) must recover a consistent image, pass the
//     oracle's independent recovered-image equality check, and resume to
//     completion. Contract-free schemes (baseline, DRAM-only, ReplayCache)
//     must still converge — recovery completes and the programs resume —
//     but nothing is promised about the image, and the oracle must not
//     judge them.
//
//   - Leg 3 (implicit in Leg 2): the resumed run re-attaches the lockstep
//     oracle from the resume point, so post-recovery divergence surfaces as
//     an error from RunWithFailure.
func TestSchemeConformanceMatrix(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			cfg, err := SchemeConfig(s)
			if err != nil {
				t.Fatal(err)
			}
			contract := persist.SchemeFor(cfg).Contract()
			rc := RunConfig{App: "mcf", Scheme: s, InstsPerThread: 3000, Lockstep: true}

			// Leg 1: lockstep-clean uninterrupted run.
			res, err := Run(rc)
			if err != nil {
				t.Fatalf("clean lockstep run: %v", err)
			}
			if res.Cycles == 0 {
				t.Fatal("no cycles simulated")
			}

			// Leg 2: six oracle-checked crash points across the run.
			crashed := 0
			for i := 1; i <= 6; i++ {
				cycle := res.Cycles * uint64(i) / 8
				if cycle == 0 {
					cycle = 1
				}
				out, ferr := RunWithFailure(rc, cycle)
				if ferr != nil {
					t.Fatalf("crash at cycle %d: %v", cycle, ferr)
				}
				if out.CompletedBeforeFailure {
					continue
				}
				crashed++
				if out.ResumedResult == nil {
					t.Fatalf("crash at cycle %d: recovery did not resume", cycle)
				}
				if len(out.PerCore) == 0 {
					t.Fatalf("crash at cycle %d: no per-core recovery outcomes", cycle)
				}
				switch contract {
				case persist.RecoverNone:
					// Convergence only: the oracle must not have judged an
					// image these schemes never promised.
					if out.OracleChecked {
						t.Fatalf("crash at cycle %d: oracle judged a contract-free scheme", cycle)
					}
				default:
					if !out.Consistent {
						t.Fatalf("crash at cycle %d: %d inconsistent words after recovery",
							cycle, out.Inconsistencies)
					}
					if !out.ArchConsistent {
						t.Fatalf("crash at cycle %d: recovered register state diverged", cycle)
					}
					if !out.OracleChecked {
						t.Fatalf("crash at cycle %d: oracle recovery check did not engage", cycle)
					}
					if out.OracleViolation != "" {
						t.Fatalf("crash at cycle %d: oracle violation: %s", cycle, out.OracleViolation)
					}
				}
			}
			if crashed == 0 {
				t.Fatal("every crash point fell after workload completion; matrix exercised nothing")
			}
		})
	}
}
