package ppa

// Shape tests: each figure function must reproduce the paper's qualitative
// result — who wins, by roughly what factor, where the outliers are. The
// bands are deliberately generous: the substrate is a from-scratch
// simulator, not the authors' gem5 testbed, and these tests run with
// reduced instruction counts. bench_test.go and cmd/ppabench run the same
// experiments at full resolution.

import (
	"testing"

	"ppa/internal/stats"
)

const (
	figInsts   = 12_000 // per-thread instructions for all-app figures
	sweepInsts = 8_000  // per-thread instructions for config sweeps
)

func TestFig01ReplayCacheShape(t *testing.T) {
	s, err := Fig01(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 41 {
		t.Fatalf("%d apps", len(s.Values))
	}
	// Paper: ~5x average slowdown.
	if s.GMean < 2.5 || s.GMean > 9 {
		t.Fatalf("ReplayCache gmean %.2f, paper ~5x", s.GMean)
	}
	for _, v := range s.Values {
		if v.Value < 1.0 {
			t.Errorf("%s: ReplayCache faster than baseline (%.3f)", v.App, v.Value)
		}
	}
}

func TestFig08RuntimeOverheadShape(t *testing.T) {
	r, err := Fig08(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: PPA 2%, Capri 26%.
	if r.PPA.GMean < 0.99 || r.PPA.GMean > 1.07 {
		t.Fatalf("PPA gmean %.3f, paper 1.02", r.PPA.GMean)
	}
	if r.Capri.GMean < 1.08 || r.Capri.GMean > 1.45 {
		t.Fatalf("Capri gmean %.3f, paper 1.26", r.Capri.GMean)
	}
	if r.Capri.GMean <= r.PPA.GMean {
		t.Fatal("Capri must cost more than PPA")
	}
}

// TestRBWriteTrafficOutlier checks Section 7.1's rb observation at full
// resolution: rb's wide written working set pressures the WPQ, making it
// PPA's costliest application. The backlog takes ~100k cycles to build, so
// this needs a long run.
func TestRBWriteTrafficOutlier(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base, err := Run(RunConfig{App: "rb", Scheme: SchemeBaseline, InstsPerThread: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	ppa, err := Run(RunConfig{App: "rb", Scheme: SchemePPA, InstsPerThread: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(ppa.Cycles) / float64(base.Cycles)
	if slow < 1.04 || slow > 1.5 {
		t.Fatalf("rb slowdown %.3f — should be PPA's write-traffic outlier (paper: highest bar in Fig 8)", slow)
	}
	if ppa.RegionEndStallFrac() < 0.02 {
		t.Fatalf("rb region-end stalls %.2f%% — WPQ pressure should be visible",
			ppa.RegionEndStallFrac()*100)
	}
}

func TestFig09VsDRAMOnlyShape(t *testing.T) {
	r, err := Fig09(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: PPA 16%, memory mode 14% over DRAM-only; PPA's persistence
	// costs about as much as the memory mode's lack of it.
	if r.MemoryMode.GMean < 1.02 || r.MemoryMode.GMean > 1.45 {
		t.Fatalf("memory-mode vs DRAM-only %.3f, paper 1.14", r.MemoryMode.GMean)
	}
	if r.PPA.GMean < r.MemoryMode.GMean*0.98 {
		t.Fatalf("PPA (%.3f) cannot beat memory mode (%.3f)", r.PPA.GMean, r.MemoryMode.GMean)
	}
	if r.PPA.GMean > r.MemoryMode.GMean*1.12 {
		t.Fatalf("PPA (%.3f) too far above memory mode (%.3f)", r.PPA.GMean, r.MemoryMode.GMean)
	}
	// Poor-locality outliers: lbm and pc suffer most from the DRAM cache
	// (paper: 44% and 58%).
	vals := map[string]float64{}
	for _, v := range r.MemoryMode.Values {
		vals[v.App] = v.Value
	}
	if vals["lbm"] < r.MemoryMode.GMean || vals["pc"] < r.MemoryMode.GMean {
		t.Fatalf("lbm (%.2f) and pc (%.2f) should be the memory-mode outliers (mean %.2f)",
			vals["lbm"], vals["pc"], r.MemoryMode.GMean)
	}
}

func TestFig10VsPSPShape(t *testing.T) {
	r, err := Fig10(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: PPA ~3% on this subset; ideal PSP 1.39x average, worst 2.4x.
	if r.PPA.GMean > 1.12 {
		t.Fatalf("PPA gmean %.3f on memory-intensive subset", r.PPA.GMean)
	}
	if r.PSP.GMean < 1.15 {
		t.Fatalf("ideal PSP gmean %.3f — app-direct must lose the DRAM cache benefit", r.PSP.GMean)
	}
	if r.PSP.GMean <= r.PPA.GMean {
		t.Fatal("PSP must cost more than PPA on memory-intensive apps")
	}
	// rb is the crossover candidate: its high locality (4% L2 miss) makes
	// app-direct comparatively cheap — it must be PSP's best case (the
	// paper reports PPA slightly underperforming PSP there).
	pspVals := map[string]float64{}
	for _, v := range r.PSP.Values {
		pspVals[v.App] = v.Value
	}
	if pspVals["rb"] > r.PSP.GMean {
		t.Fatalf("rb: PSP %.3f above the PSP average %.3f — should be its best case",
			pspVals["rb"], r.PSP.GMean)
	}
}

func TestFig11RegionStallShape(t *testing.T) {
	s, err := Fig11(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Mean stall percentage stays small. The paper reports 0.21%; our
	// counter tallies every cycle a boundary is pending — including cycles
	// where the backend keeps committing — so it overstates lost time and
	// lands around a few percent while the end-to-end overhead stays ~2%.
	if s.GMean > 12.0 {
		t.Fatalf("mean region-end stalls %.2f%%", s.GMean)
	}
	vals := map[string]float64{}
	for _, v := range s.Values {
		vals[v.App] = v.Value
	}
	// water-ns/water-sp are the stall outliers (paper: 6.1% and 8.1%).
	if vals["water-ns"] < s.GMean && vals["water-sp"] < s.GMean {
		t.Fatalf("water-ns (%.2f%%) / water-sp (%.2f%%) should exceed the mean (%.2f%%)",
			vals["water-ns"], vals["water-sp"], s.GMean)
	}
}

func TestFig12RenameStallShape(t *testing.T) {
	s, err := Fig12(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: +0.07% on average — negligible.
	if s.GMean > 1.0 {
		t.Fatalf("rename stall increase %.3f%%, paper 0.07%%", s.GMean)
	}
}

func TestFig13RegionShape(t *testing.T) {
	r, err := Fig13(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 18 stores + 301 others per region on average; PPA's regions
	// are an order of magnitude longer than Capri's 29.
	if r.AvgStores < 10 || r.AvgStores > 45 {
		t.Fatalf("avg stores/region %.1f, paper 18", r.AvgStores)
	}
	if r.AvgOthers < 120 || r.AvgOthers > 700 {
		t.Fatalf("avg others/region %.1f, paper 301", r.AvgOthers)
	}
	avgLen := r.AvgStores + r.AvgOthers
	if avgLen < 6*float64(r.CapriRegionLen) {
		t.Fatalf("PPA regions (%.0f) should dwarf Capri's (%d)", avgLen, r.CapriRegionLen)
	}
	if r.ReplayCacheRegionLen != 12 || r.CapriRegionLen != 29 {
		t.Fatal("comparison region lengths drifted from the paper")
	}
}

func TestFig05FreeRegCDFShape(t *testing.T) {
	r, err := Fig05(6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Int) == 0 || len(r.FP) == 0 {
		t.Fatal("missing CDF series")
	}
	// The headline observation: the PRF is underutilized — a large free
	// pool exists for a majority of cycles in every suite.
	for _, s := range r.Int {
		maxFree := s.Points[len(s.Points)-1].Value
		if maxFree < 40 {
			t.Errorf("suite %s: max free int regs %d — PRF should be underutilized", s.Suite, maxFree)
		}
	}
}

func TestFig14DeepHierarchyShape(t *testing.T) {
	s, err := Fig14(figInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~1% — the long regions cover the deeper hierarchy.
	if s.GMean > 1.08 {
		t.Fatalf("PPA with L3 gmean %.3f, paper ~1.01", s.GMean)
	}
}

func TestFig15WPQShape(t *testing.T) {
	pts, err := Fig15(sweepInsts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Shrinking the WPQ cannot help; growing it cannot hurt much.
	if pts[0].GMean < pts[1].GMean*0.99 {
		t.Fatalf("WPQ-8 (%.3f) should not beat WPQ-16 (%.3f)", pts[0].GMean, pts[1].GMean)
	}
	if pts[2].GMean > pts[1].GMean*1.03 {
		t.Fatalf("WPQ-24 (%.3f) should not lose to WPQ-16 (%.3f)", pts[2].GMean, pts[1].GMean)
	}
}

func TestFig16PRFShape(t *testing.T) {
	pts, err := Fig16(sweepInsts)
	if err != nil {
		t.Fatal(err)
	}
	first, def, last := pts[0].GMean, pts[4].GMean, pts[5].GMean
	// Paper: 80/80 costs ~12%; beyond the default the benefit saturates.
	if first <= def {
		t.Fatalf("RF-80/80 (%.3f) must cost more than the default (%.3f)", first, def)
	}
	if first < 1.02 || first > 1.6 {
		t.Fatalf("RF-80/80 gmean %.3f, paper ~1.12", first)
	}
	if last > def*1.03 {
		t.Fatalf("Icelake point (%.3f) should not regress from default (%.3f)", last, def)
	}
}

func TestFig17CSQShape(t *testing.T) {
	pts, err := Fig17(sweepInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: minimal sensitivity; even CSQ-10 stays cheap.
	def := pts[3].GMean
	for _, p := range pts {
		if p.GMean > def*1.12 {
			t.Fatalf("%s gmean %.3f vs default %.3f — CSQ should be insensitive",
				p.Label, p.GMean, def)
		}
	}
	// And smaller CSQs never help.
	if pts[0].GMean < def*0.98 {
		t.Fatalf("CSQ-10 (%.3f) beats default (%.3f)", pts[0].GMean, def)
	}
}

func TestFig18BandwidthShape(t *testing.T) {
	pts, err := Fig18(sweepInsts)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 1 GB/s costs ~7%; >= default stays ~2%.
	low, def := pts[0].GMean, pts[1].GMean
	if low < def {
		t.Fatalf("1GB/s (%.3f) must cost more than 2.3GB/s (%.3f)", low, def)
	}
	if low > 1.5 {
		t.Fatalf("1GB/s gmean %.3f, paper ~1.07", low)
	}
	for _, p := range pts[1:] {
		if p.GMean > def*1.04 {
			t.Fatalf("%s (%.3f) should match or beat default (%.3f)", p.Label, p.GMean, def)
		}
	}
}

func TestFig19ThreadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts, err := Fig19(4000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2-6% overhead from 8 to 64 threads.
	for _, p := range pts {
		if p.GMean > 1.15 {
			t.Fatalf("%s gmean %.3f — thread scaling should stay cheap", p.Label, p.GMean)
		}
	}
}

func TestAblationsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	results, err := Ablations(sweepInsts)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*AblationResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	// Removing async writeback or coalescing must hurt.
	if r := byName["sync-persist"]; r.AblGMean < r.PPAGMean {
		t.Fatalf("sync-persist (%.3f) should cost more than PPA (%.3f)", r.AblGMean, r.PPAGMean)
	}
	if r := byName["no-coalescing"]; r.AblGMean < r.PPAGMean {
		t.Fatalf("no-coalescing (%.3f) should cost more than PPA (%.3f)", r.AblGMean, r.PPAGMean)
	}
	// A strict barrier can only be slower or equal.
	if r := byName["strict-barrier"]; r.AblGMean < r.PPAGMean*0.99 {
		t.Fatalf("strict barrier (%.3f) beats relaxed (%.3f)", r.AblGMean, r.PPAGMean)
	}
	// The value-bearing CSQ has no register pressure: roughly equal cost.
	if r := byName["value-csq"]; r.AblGMean > r.PPAGMean*1.1 {
		t.Fatalf("value-csq (%.3f) far above PPA (%.3f)", r.AblGMean, r.PPAGMean)
	}
}

func TestSeriesGMeanMatchesValues(t *testing.T) {
	vals := []AppValue{{App: "a", Value: 1}, {App: "b", Value: 4}}
	s := newSeries("x", vals)
	if s.GMean != stats.GeoMean([]float64{1, 4}) {
		t.Fatal("gmean mismatch")
	}
}

func TestSortByApp(t *testing.T) {
	vals := []AppValue{{App: "xsbench"}, {App: "bzip2"}, {App: "mcf"}}
	SortByApp(vals)
	if vals[0].App != "bzip2" || vals[2].App != "xsbench" {
		t.Fatalf("order: %v", vals)
	}
}

func TestSuiteGMeans(t *testing.T) {
	s := newSeries("x", []AppValue{
		{App: "a", Suite: "CPU2006", Value: 1.0},
		{App: "b", Suite: "CPU2006", Value: 4.0},
		{App: "c", Suite: "WHISPER", Value: 2.0},
	})
	gs := s.SuiteGMeans()
	if len(gs) != 2 {
		t.Fatalf("%d suites", len(gs))
	}
	if gs[0].Suite != "CPU2006" || gs[0].N != 2 || gs[0].GMean != 2.0 {
		t.Fatalf("CPU2006 stat wrong: %+v", gs[0])
	}
	if gs[1].Suite != "WHISPER" || gs[1].GMean != 2.0 {
		t.Fatalf("WHISPER stat wrong: %+v", gs[1])
	}
}

func TestWriteAmplification(t *testing.T) {
	rows, err := WriteAmplification(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// PPA persists every store's line (coalesced), so it always writes
		// at least as much media as the baseline's natural evictions.
		if r.PPA < r.Baseline {
			t.Errorf("%s: PPA media writes (%.2f/kI) below baseline (%.2f/kI)",
				r.App, r.PPA, r.Baseline)
		}
		// ReplayCache's clwb-per-store with no coalescing window amplifies
		// traffic beyond PPA's (Section 2.4).
		if r.ReplayCache < r.PPA {
			t.Errorf("%s: ReplayCache media writes (%.2f/kI) below PPA (%.2f/kI)",
				r.App, r.ReplayCache, r.PPA)
		}
	}
}

func TestSeedStudyStability(t *testing.T) {
	r, err := SeedStudy("sjeng", []int64{11, 22, 33}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Slowdowns) != 3 {
		t.Fatalf("%d seeds", len(r.Slowdowns))
	}
	// PPA's overhead must be stable across trace seeds: every seed lands
	// within a tight band around 1.0x for a cache-friendly app.
	if r.Min < 0.99 || r.Max > 1.10 {
		t.Fatalf("seed-unstable slowdowns: %.3f..%.3f", r.Min, r.Max)
	}
	if _, err := SeedStudy("bogus", nil, 100); err == nil {
		t.Fatal("unknown app must error")
	}
}
