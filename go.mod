module ppa

go 1.22
