// Package ppa is the public API of the Persistent Processor Architecture
// reproduction: a cycle-level multi-core simulator with PPA's
// store-integrity hardware (MaskReg, CSQ, LCPC, dynamic region formation,
// asynchronous store persistence, JIT checkpointing and recovery), the
// paper's comparison schemes (memory-mode baseline, ReplayCache, Capri,
// ideal PSP/eADR, DRAM-only), the 41-application workload suite, and the
// experiment harness that regenerates every table and figure of the
// MICRO '23 evaluation.
//
// Quick start:
//
//	res, err := ppa.Run(ppa.RunConfig{App: "mcf", Scheme: ppa.SchemePPA})
//	fmt.Println(res.Cycles, res.IPC())
//
// Crash consistency:
//
//	out, err := ppa.RunWithFailure(ppa.RunConfig{App: "mcf", Scheme: ppa.SchemePPA}, 50_000)
//	// out.Consistent reports whether recovered NVM matches the committed prefix.
package ppa

import (
	"fmt"
	"io"

	"ppa/internal/cache"
	"ppa/internal/checkpoint"
	"ppa/internal/forensics"
	"ppa/internal/multicore"
	"ppa/internal/nvm"
	"ppa/internal/obs"
	"ppa/internal/persist"
	"ppa/internal/pipeline"
	"ppa/internal/recovery"
	"ppa/internal/workload"
)

// Scheme names a persistence scheme.
type Scheme string

// The available schemes.
const (
	SchemeBaseline    Scheme = "baseline"
	SchemePPA         Scheme = "ppa"
	SchemeReplayCache Scheme = "replaycache"
	SchemeCapri       Scheme = "capri"
	SchemeEADR        Scheme = "eadr"
	SchemeDRAMOnly    Scheme = "dram-only"
	// SchemeSBGate is the Section 6 store-buffer-gating alternative PPA
	// rejects; included to quantify that design discussion.
	SchemeSBGate Scheme = "sb-gate"
	// SchemeUndoLog is a software-flavored undo-logging scheme: pre-images
	// are made durable in a per-core NVM log before stores persist in place,
	// and recovery rolls uncommitted regions back to the last region-commit
	// marker.
	SchemeUndoLog Scheme = "undolog"
	// SchemeRedoTxn is a redo-logging transaction scheme in the WrAP/Marathe
	// style: stores gate in the store buffer, commit appends redo records,
	// the region-commit marker authorizes lazy replay into the image, and
	// recovery replays authorized regions only.
	SchemeRedoTxn Scheme = "redotxn"
	// SchemeHTPM is a hardware-transactional persistence scheme in the
	// Giles/HTPM style: redo records stage in a volatile back-end buffer and
	// flush to the durable log at region commit, before the marker seals the
	// region.
	SchemeHTPM Scheme = "htpm"
)

// Schemes lists every scheme name.
func Schemes() []Scheme {
	return []Scheme{SchemeBaseline, SchemePPA, SchemeReplayCache, SchemeCapri,
		SchemeEADR, SchemeDRAMOnly, SchemeSBGate,
		SchemeUndoLog, SchemeRedoTxn, SchemeHTPM}
}

// SchemeConfig resolves a scheme name to its full configuration.
func SchemeConfig(s Scheme) (persist.Config, error) {
	switch s {
	case SchemeBaseline:
		return persist.BaselineDefault(), nil
	case SchemePPA:
		return persist.PPADefault(), nil
	case SchemeReplayCache:
		return persist.ReplayCacheDefault(), nil
	case SchemeCapri:
		return persist.CapriDefault(), nil
	case SchemeEADR:
		return persist.EADRDefault(), nil
	case SchemeDRAMOnly:
		return persist.DRAMOnlyDefault(), nil
	case SchemeSBGate:
		return persist.SBGateDefault(), nil
	case SchemeUndoLog:
		return persist.UndoLogDefault(), nil
	case SchemeRedoTxn:
		return persist.RedoTxnDefault(), nil
	case SchemeHTPM:
		return persist.HTPMDefault(), nil
	default:
		return persist.Config{}, fmt.Errorf("ppa: unknown scheme %q", s)
	}
}

// RunConfig describes one simulation.
type RunConfig struct {
	// App is a workload name from Apps(); Profile overrides it if set.
	App string
	// Profile directly supplies a workload profile (optional).
	Profile *workload.Profile
	// Scheme selects the persistence scheme (default SchemePPA).
	Scheme Scheme
	// SchemeOverride, when non-nil, bypasses Scheme resolution entirely
	// (for ablations).
	SchemeOverride *persist.Config
	// InstsPerThread is the dynamic instruction count per hardware thread
	// (default 60000).
	InstsPerThread int
	// Customize, when non-nil, edits the assembled machine configuration
	// (PRF size, CSQ depth, NVM bandwidth, cache organization, ...).
	Customize func(*multicore.Config)
	// SampleFreeRegs enables per-cycle free-register CDFs (Figure 5).
	SampleFreeRegs bool
	// Obs attaches an observability hub (event tracing + metrics) to the
	// machine. When nil, the package-level DefaultObs applies (which is
	// itself nil unless a tool installed one); a nil hub disables
	// instrumentation entirely.
	Obs *obs.Hub
	// Lockstep attaches the differential oracle (internal/oracle): every
	// committed instruction is cross-checked against an ISA-level golden
	// model and the NVM accept stream against PPA's persist-ordering
	// invariants. A divergence surfaces as an *OracleError from the run.
	Lockstep bool
	// Forensics attaches the violation flight recorder: when a torture
	// point violates the crash-consistency contract or the lockstep oracle
	// diverges, a correlated evidence bundle (trace tail, metrics
	// snapshot, NVM accept-stream tail, divergence report) is captured at
	// the instant of the failure. Build one with NewForensicsRecorder.
	Forensics *forensics.Recorder
}

// DefaultObs, when non-nil, is attached to every system NewSystem builds
// whose RunConfig does not carry its own hub. The experiment harness
// (FigXX functions, ppabench) assembles machines internally; installing a
// hub here is how tools trace those runs without threading a hub through
// every call site. Sequential runs share the hub: trace events interleave
// (distinguish by cycle restarts) and counters accumulate.
var DefaultObs *obs.Hub

// DefaultInsts is the default per-thread dynamic instruction count.
const DefaultInsts = 60_000

// NewObsHub builds an observability hub (metrics registry + event tracer)
// for RunConfig.Obs or DefaultObs. traceCapacity bounds the trace ring
// buffer in events; <= 0 selects the default (2^20 events, keeping the most
// recent window). The hub lives in an internal package, so this constructor
// and the Write* helpers below are the public handle: callers hold the
// returned value opaquely and chain its methods.
func NewObsHub(traceCapacity int) *obs.Hub {
	return obs.NewHub(traceCapacity)
}

// WriteChromeTrace renders a hub's recorded events as a Chrome trace_event
// JSON document (open in chrome://tracing or Perfetto). A nil hub writes an
// empty trace.
func WriteChromeTrace(w io.Writer, hub *obs.Hub) error {
	return obs.WriteChromeTrace(w, hub.Tracer().Events())
}

// WriteMetricsJSONL writes a hub's metrics registry snapshot as JSON Lines,
// one sample per line, sorted by name. A nil hub writes nothing.
func WriteMetricsJSONL(w io.Writer, hub *obs.Hub) error {
	return hub.Registry().WriteJSONL(w)
}

// ServeObs exposes the hub live over HTTP at addr: /metrics (Prometheus
// text exposition with p50/p95/p99 summary quantiles), /snapshot.json
// (metric samples), and /trace (recent ring events as JSON Lines). Serving
// concurrently with a running simulation is race-free — gauge functions,
// the one unsynchronized read, are excluded unless a request passes
// ?gauges=1 (safe only once the run is quiescent). A nil hub serves 503s.
// Close the returned server to release the listener.
func ServeObs(addr string, hub *obs.Hub) (*obs.Server, error) {
	return obs.Serve(addr, hub)
}

// ForensicsRecorder is the violation flight recorder for RunConfig.Forensics
// (see internal/forensics): it keeps the first few violation bundles of a
// run and optionally writes each to disk as it is captured.
type ForensicsRecorder = forensics.Recorder

// ForensicsBundle is one captured failure bundle.
type ForensicsBundle = forensics.Bundle

// NewForensicsRecorder builds a flight recorder keeping at most max bundles
// (a small default when max <= 0). When dir is non-empty every kept bundle
// is also written there as a CRC-framed .ppab artifact, renderable with
// `ppareport forensics <file>`.
func NewForensicsRecorder(dir string, max int) *ForensicsRecorder {
	return forensics.NewRecorder(dir, max)
}

func (rc RunConfig) resolve() (workload.Profile, persist.Config, int, error) {
	var prof workload.Profile
	if rc.Profile != nil {
		prof = *rc.Profile
	} else {
		name := rc.App
		if name == "" {
			return prof, persist.Config{}, 0, fmt.Errorf("ppa: RunConfig needs App or Profile")
		}
		p, err := workload.ByName(name)
		if err != nil {
			return prof, persist.Config{}, 0, err
		}
		prof = p
	}
	var sch persist.Config
	if rc.SchemeOverride != nil {
		sch = *rc.SchemeOverride
	} else {
		s := rc.Scheme
		if s == "" {
			s = SchemePPA
		}
		cfg, err := SchemeConfig(s)
		if err != nil {
			return prof, persist.Config{}, 0, err
		}
		sch = cfg
	}
	insts := rc.InstsPerThread
	if insts <= 0 {
		insts = DefaultInsts
	}
	return prof, sch, insts, nil
}

// Result is the outcome of a completed run.
type Result = multicore.Result

// Apps returns the 41 application names in suite order.
func Apps() []string {
	ps := workload.Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// defaultMachine assembles the Table 2 machine configuration.
func defaultMachine(n int, sch persist.Config) multicore.Config {
	return multicore.DefaultConfig(n, sch)
}

// NewSystem assembles (but does not run) the simulated machine for a
// configuration, for callers that need fine-grained control (crash
// injection, stepping, invariant checks).
func NewSystem(rc RunConfig) (*multicore.System, error) {
	prof, sch, insts, err := rc.resolve()
	if err != nil {
		return nil, err
	}
	w, err := workload.New(prof, insts)
	if err != nil {
		return nil, err
	}
	cfg := multicore.DefaultConfig(len(w.Threads), sch)
	cfg.Pipeline.SampleFreeRegs = rc.SampleFreeRegs
	cfg.Lockstep = rc.Lockstep
	cfg.Obs = rc.Obs
	if cfg.Obs == nil {
		cfg.Obs = DefaultObs
	}
	if rc.Customize != nil {
		rc.Customize(&cfg)
	}
	return multicore.NewSystem(cfg, w)
}

// Run executes one simulation to completion.
func Run(rc RunConfig) (*Result, error) {
	_, _, insts, err := rc.resolve()
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(rc)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(uint64(insts)*4000 + 1_000_000); err != nil {
		return nil, err
	}
	return sys.Collect(), nil
}

// FailureOutcome reports a crash-and-recover experiment.
type FailureOutcome struct {
	// FailCycle is the cycle at which power was cut.
	FailCycle uint64
	// CompletedBeforeFailure is true when the workload finished before the
	// scheduled failure (no crash occurred).
	CompletedBeforeFailure bool
	// PerCore holds each core's recovery outcome.
	PerCore []*recovery.Outcome
	// Consistent reports whether, after recovery, NVM held the committed
	// prefix of every thread (the crash-consistency contract).
	Consistent bool
	// ArchConsistent reports whether the recovered committed register
	// state (CRT + checkpointed physical registers) matched the golden
	// in-order state for every core. Only meaningful for schemes that
	// checkpoint the CRT (PPA); true otherwise.
	ArchConsistent bool
	// Inconsistencies counts committed-prefix words whose NVM value was
	// wrong after recovery (0 when Consistent).
	Inconsistencies int
	// CheckpointBytes is the total encoded checkpoint size across cores.
	CheckpointBytes int
	// FlushedBytes is how much dirty data a flush-on-failure scheme (eADR)
	// had to push on residual energy — the quantity whose energy cost
	// Table 5 contrasts with PPA's checkpoint.
	FlushedBytes int
	// ResumedResult is the result of resuming every core after recovery
	// and running to completion (nil if the run completed pre-failure).
	ResumedResult *Result
	// OracleChecked is true when the run carried the lockstep oracle and
	// its post-recovery image check ran (RunConfig.Lockstep on a scheme
	// whose recovery contract the oracle models).
	OracleChecked bool
	// OracleViolation is the oracle's post-recovery verdict when it
	// disagreed with the machine (empty when clean or unchecked).
	OracleViolation string
}

// RunWithFailure runs a simulation, cuts power at failCycle, JIT-checkpoints
// (for schemes that support it), recovers, verifies crash consistency, and
// resumes the interrupted programs to completion.
func RunWithFailure(rc RunConfig, failCycle uint64) (*FailureOutcome, error) {
	prof, sch, insts, err := rc.resolve()
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(rc)
	if err != nil {
		return nil, err
	}
	out := &FailureOutcome{FailCycle: failCycle}
	done, err := sys.RunUntil(failCycle)
	if err != nil {
		return nil, err
	}
	if done {
		out.CompletedBeforeFailure = true
		out.Consistent = true
		return out, nil
	}

	// Power failure: checkpoint and lose all volatile state. Recovery reads
	// the images back from the NVM checkpoint area — the only state that
	// actually survives an outage — validating framing and checksums on the
	// way in.
	sys.Crash()
	out.FlushedBytes = sys.LastCrashFlushBytes()
	dev := sys.Device()
	images, err := recovery.LoadImages(dev)
	if err != nil {
		return nil, err
	}
	for _, im := range images {
		out.CheckpointBytes += len(im.Encode())
	}

	// Recovery dispatches on the scheme's contract. Checkpoint-replay
	// schemes replay each core's CSQ from the JIT dump; transaction schemes
	// validate the dump (a torn checkpoint must still surface as a
	// detection) but reconstruct the image from their own durable log,
	// rolling back or replaying to each core's last region-commit marker.
	hub := rc.Obs
	if hub == nil {
		hub = DefaultObs
	}
	scheme := persist.SchemeFor(sch)
	contract := scheme.Contract()
	committed := make([]int, len(images))
	for i, im := range images {
		committed[i] = im.Committed
	}
	// resume is where each core restarts: the committed prefix for
	// checkpoint-replay schemes, the last marker for transaction schemes.
	resume := committed
	if contract == persist.RecoverTxnBoundary {
		for _, im := range images {
			if verr := recovery.ValidateImage(im); verr != nil {
				return nil, verr
			}
		}
		points, rerr := scheme.Recover(dev, len(images))
		if rerr != nil {
			return nil, rerr
		}
		resume = points
		for i, im := range images {
			prog := sys.Cores()[i].Program()
			o := &recovery.Outcome{CoreID: im.CoreID, ResumeIndex: points[i]}
			if points[i] > 0 && points[i] <= prog.Len() {
				o.ResumePC = prog.Insts[points[i]-1].PC + 4
			}
			out.PerCore = append(out.PerCore, o)
		}
	} else {
		for i, im := range images {
			prog := sys.Cores()[i].Program()
			o, rerr := recovery.RecoverObserved(dev, im, prog, hub, sys.Cycle())
			if rerr != nil {
				return nil, rerr
			}
			out.PerCore = append(out.PerCore, o)
		}
	}
	out.Consistent = true
	out.ArchConsistent = true
	for i := range images {
		prog := sys.Cores()[i].Program()
		if n := recovery.CountInconsistencies(dev, prog, resume[i]); n > 0 {
			out.Consistent = false
			out.Inconsistencies += n
		}
	}

	// For schemes that checkpoint the CRT (PPA with an index CSQ), the
	// recovered committed register state must equal the golden in-order
	// state too.
	if scheme.VerifiesArchState() {
		mc := multicore.DefaultConfig(len(images), sch)
		if rc.Customize != nil {
			rc.Customize(&mc)
		}
		for i, im := range images {
			ren, rerr := recovery.RestoreRenamer(mc.Pipeline.Rename, im)
			if rerr != nil {
				return nil, rerr
			}
			if verr := recovery.VerifyArchState(ren, sys.Cores()[i].Program(), committed[i]); verr != nil {
				out.ArchConsistent = false
			}
		}
	}

	// The oracle's second opinion on recovery: for committed-prefix schemes
	// the recovered NVM image must equal the golden model's memory at each
	// core's committed prefix; for transaction schemes, at each core's own
	// recovery point. Schemes with no contract (baseline, DRAM-only,
	// ReplayCache) are run to measure how badly they miss it, so the oracle
	// does not judge them.
	if m := sys.Oracle(); m != nil {
		switch contract {
		case persist.RecoverCommittedPrefix:
			out.OracleChecked = true
			if oerr := m.CheckRecovered(dev.Image(), committed); oerr != nil {
				out.OracleViolation = oerr.Error()
			}
		case persist.RecoverTxnBoundary:
			out.OracleChecked = true
			if oerr := m.CheckRecoveredAt(dev.Image(), resume); oerr != nil {
				out.OracleViolation = oerr.Error()
			}
		}
	}

	// Recovery is complete: invalidate the checkpoint area so a later
	// outage cannot be confused with this one, then resume each interrupted
	// program right after its LCPC on a fresh machine state (the caches are
	// cold, as after a real outage).
	dev.ClearCheckpoint()
	resumed, err := resumeAfterFailure(prof, sch, insts, sys, resume, rc.Lockstep)
	if err != nil {
		return nil, err
	}
	out.ResumedResult = resumed
	return out, nil
}

// resumeAfterFailure rebuilds the machine around the surviving NVM device
// and continues every thread from its committed prefix.
func resumeAfterFailure(prof workload.Profile, sch persist.Config, insts int,
	crashed *multicore.System, committed []int, lockstep bool) (*Result, error) {
	w, err := workload.New(prof, insts)
	if err != nil {
		return nil, err
	}
	cfg := multicore.DefaultConfig(len(w.Threads), sch)
	cfg.Lockstep = lockstep
	sys, err := multicore.NewSystemResumed(cfg, w, crashed.Device(), committed)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(uint64(insts)*4000 + 1_000_000); err != nil {
		return nil, err
	}
	return sys.Collect(), nil
}

// CheckpointImage captures a live core's JIT-checkpoint image (exposed for
// examples and tests).
func CheckpointImage(core *pipeline.Core) *checkpoint.Image { return checkpoint.Capture(core) }

// Expose commonly needed internal types through the public surface.
type (
	// MachineConfig is the full machine configuration (for Customize).
	MachineConfig = multicore.Config
	// HierarchyParams configures the cache hierarchy.
	HierarchyParams = cache.Params
	// NVMConfig configures the NVM device.
	NVMConfig = nvm.Config
	// WorkloadProfile describes a synthetic application.
	WorkloadProfile = workload.Profile
	// PersistConfig is a fully resolved persistence scheme.
	PersistConfig = persist.Config
)
