package ppa

// Hot-loop and sweep-engine benchmarks: the per-cycle cost of
// Core.Step+Hierarchy.Tick (the quantity the allocation-free refactor
// targets), and the torture sweep's sequential-vs-parallel wall clock.
// TestCoreStepAllocCeiling is the CI gate that keeps the cycle loop
// allocation-free; BENCH_PR3.json (see cmd/ppabench -benchjson) commits the
// measured trajectory.

import (
	"context"
	"testing"
)

// coreStepAllocCeiling is the committed allocs-per-cycle budget for a warm
// single-core PPA system. The refactored loop measures ~0.01 (the residue
// is amortized map growth in the volatile dirty-word layer); the ceiling
// leaves slack for noise while still failing on any per-cycle allocation
// sneaking back in (the old word-map loop sat around 1.5).
const coreStepAllocCeiling = 0.25

// BenchmarkCoreStep measures one cycle of a warm single-core PPA system —
// the simulator's innermost loop. allocs/op is the headline number: it must
// stay ~0.
func BenchmarkCoreStep(b *testing.B) {
	rc := RunConfig{App: "gcc", Scheme: SchemePPA, InstsPerThread: 2_000_000}
	sys, err := NewSystem(rc)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.RunUntil(20_000); err != nil { // warm caches and queues
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done, err := sys.RunUntil(sys.Cycle() + 1)
		if err != nil {
			b.Fatal(err)
		}
		if done {
			b.StopTimer()
			if sys, err = NewSystem(rc); err != nil {
				b.Fatal(err)
			}
			if _, err = sys.RunUntil(20_000); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// TestCoreStepAllocCeiling is the allocation regression gate for the cycle
// loop. It fails when a warm system's per-cycle allocation average exceeds
// the committed ceiling.
func TestCoreStepAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs without -race")
	}
	sys, err := NewSystem(RunConfig{App: "gcc", Scheme: SchemePPA, InstsPerThread: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunUntil(20_000); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20_000, func() {
		if _, err := sys.RunUntil(sys.Cycle() + 1); err != nil {
			t.Fatal(err)
		}
	})
	if avg > coreStepAllocCeiling {
		t.Fatalf("hot loop allocates %.3f objects/cycle, ceiling %.2f — "+
			"a per-cycle allocation crept back into Core.Step/Hierarchy.Tick",
			avg, coreStepAllocCeiling)
	}
}

func benchTorturePoints() (RunConfig, []TorturePoint) {
	rc := RunConfig{App: "mcf", Scheme: SchemePPA, InstsPerThread: 1000}
	return rc, TorturePoints(1, 100, 200, 3000)
}

func BenchmarkTortureSweepSequential(b *testing.B) {
	rc, points := benchTorturePoints()
	for i := 0; i < b.N; i++ {
		rep, err := RunTorture(rc, points, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Points != len(points) {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkTortureSweepParallel(b *testing.B) {
	rc, points := benchTorturePoints()
	for i := 0; i < b.N; i++ {
		rep, err := RunTortureParallel(context.Background(), rc, points, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Points != len(points) {
			b.Fatal("short sweep")
		}
	}
}
