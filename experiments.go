package ppa

import (
	"context"
	"fmt"
	"sort"

	"ppa/internal/multicore"
	"ppa/internal/persist"
	"ppa/internal/stats"
	"ppa/internal/sweep"
	"ppa/internal/workload"
)

// This file implements the experiment harness for the paper's main result
// figures (Figures 1 and 8-13). Each function regenerates one figure's data
// series: the same applications, the same normalization (slowdown vs. the
// memory-mode baseline unless stated otherwise), and the same summary
// statistic the paper reports.

// AppValue is one bar of a per-application figure.
type AppValue struct {
	App   string
	Suite string
	Value float64
}

// Series is one scheme's bars across applications plus its geometric mean.
type Series struct {
	Label  string
	Values []AppValue
	GMean  float64
}

func newSeries(label string, vals []AppValue) Series {
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = v.Value
	}
	return Series{Label: label, Values: vals, GMean: stats.GeoMean(xs)}
}

// runJob identifies one simulation of the sweep matrix.
type runJob struct {
	prof      workload.Profile
	scheme    persist.Config
	insts     int
	customize func(*multicore.Config)
	sample    bool
}

// runAll executes jobs on the shared bounded worker pool (one worker per
// CPU) and returns results in job order; the first failure cancels the
// remaining jobs and surfaces from the lowest failing index.
func runAll(jobs []runJob) ([]*multicore.Result, error) {
	return sweep.Map(context.Background(), 0, len(jobs), func(_ context.Context, i int) (*multicore.Result, error) {
		r, err := runOne(jobs[i])
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", jobs[i].prof.Name, jobs[i].scheme.Kind, err)
		}
		return r, nil
	})
}

func runOne(j runJob) (*multicore.Result, error) {
	w, err := workload.New(j.prof, j.insts)
	if err != nil {
		return nil, err
	}
	cfg := multicore.DefaultConfig(len(w.Threads), j.scheme)
	cfg.Pipeline.SampleFreeRegs = j.sample
	// The figure/table harness is the path ppabench traces: like NewSystem,
	// attach the package default hub. Jobs run in parallel, so the hub sees
	// concurrent emitters (the obs layer is race-tested for exactly this).
	cfg.Obs = DefaultObs
	if j.customize != nil {
		j.customize(&cfg)
	}
	sys, err := multicore.NewSystem(cfg, w)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(uint64(j.insts)*4000 + 1_000_000); err != nil {
		return nil, err
	}
	return sys.Collect(), nil
}

// slowdownSeries runs every profile under the baseline and each scheme,
// returning per-scheme slowdown series normalized to the baseline's cycles.
func slowdownSeries(profiles []workload.Profile, baseline persist.Config,
	schemes []persist.Config, labels []string, insts int,
	customize func(*multicore.Config)) ([]Series, []*multicore.Result, error) {

	var jobs []runJob
	for _, p := range profiles {
		jobs = append(jobs, runJob{prof: p, scheme: baseline, insts: insts, customize: customize})
		for _, s := range schemes {
			jobs = append(jobs, runJob{prof: p, scheme: s, insts: insts, customize: customize})
		}
	}
	results, err := runAll(jobs)
	if err != nil {
		return nil, nil, err
	}
	per := 1 + len(schemes)
	series := make([][]AppValue, len(schemes))
	var baseResults []*multicore.Result
	for pi, p := range profiles {
		base := results[pi*per]
		baseResults = append(baseResults, base)
		for si := range schemes {
			r := results[pi*per+1+si]
			series[si] = append(series[si], AppValue{
				App:   p.Name,
				Suite: p.Suite,
				Value: stats.Ratio(float64(r.Cycles), float64(base.Cycles)),
			})
		}
	}
	out := make([]Series, len(schemes))
	for i := range schemes {
		out[i] = newSeries(labels[i], series[i])
	}
	return out, baseResults, nil
}

// Fig01 reproduces Figure 1: ReplayCache's slowdown over the memory-mode
// baseline across all 41 applications (the paper reports a ~5x average).
func Fig01(insts int) (Series, error) {
	s, _, err := slowdownSeries(workload.Profiles(), persist.BaselineDefault(),
		[]persist.Config{persist.ReplayCacheDefault()}, []string{"ReplayCache"}, insts, nil)
	if err != nil {
		return Series{}, err
	}
	return s[0], nil
}

// SchemeZoo runs every persistence scheme behind the PersistScheme
// interface over the paper's applications and returns one slowdown column
// per scheme, normalized to the memory-mode baseline. This is not a paper
// figure: it is the comparison surface for schemes added to the zoo
// (SB-gate and the log-based transaction schemes UndoLog, RedoTxn, HTPM)
// next to the published ones, printed by `ppabench -zoo`.
func SchemeZoo(insts int) ([]Series, error) {
	schemes := []persist.Config{
		persist.DRAMOnlyDefault(),
		persist.ReplayCacheDefault(),
		persist.CapriDefault(),
		persist.EADRDefault(),
		persist.PPADefault(),
		persist.SBGateDefault(),
		persist.UndoLogDefault(),
		persist.RedoTxnDefault(),
		persist.HTPMDefault(),
	}
	labels := []string{"DRAMOnly", "ReplayCache", "Capri", "eADR/BBB",
		"PPA", "SBGate", "UndoLog", "RedoTxn", "HTPM"}
	s, _, err := slowdownSeries(workload.Profiles(), persist.BaselineDefault(),
		schemes, labels, insts, nil)
	return s, err
}

// Fig08Result carries Figure 8's two series (PPA ~2%, Capri ~26%).
type Fig08Result struct {
	PPA   Series
	Capri Series
}

// Fig08 reproduces Figure 8: normalized slowdown of PPA and Capri to the
// memory-mode baseline across all 41 applications, 40-entry CSQ.
func Fig08(insts int) (*Fig08Result, error) {
	s, _, err := slowdownSeries(workload.Profiles(), persist.BaselineDefault(),
		[]persist.Config{persist.PPADefault(), persist.CapriDefault()},
		[]string{"PPA", "Capri"}, insts, nil)
	if err != nil {
		return nil, err
	}
	return &Fig08Result{PPA: s[0], Capri: s[1]}, nil
}

// Fig09Result carries Figure 9's two series: PPA and the memory-mode
// baseline, both normalized to a DRAM-only system (paper: 16% and 14%).
type Fig09Result struct {
	PPA        Series
	MemoryMode Series
}

// Fig09 reproduces Figure 9.
func Fig09(insts int) (*Fig09Result, error) {
	s, _, err := slowdownSeries(workload.Profiles(), persist.DRAMOnlyDefault(),
		[]persist.Config{persist.PPADefault(), persist.BaselineDefault()},
		[]string{"PPA", "MemoryMode"}, insts, nil)
	if err != nil {
		return nil, err
	}
	return &Fig09Result{PPA: s[0], MemoryMode: s[1]}, nil
}

// Fig10Result carries Figure 10's comparison of PPA and the ideal PSP
// (eADR/BBB in app-direct mode) on the high-L2-miss applications.
type Fig10Result struct {
	PPA Series
	PSP Series
}

// Fig10 reproduces Figure 10 (paper: PPA ~3%, PSP 1.39x average and up to
// 2.4x for libquantum; rb is the one app where PSP slightly wins).
func Fig10(insts int) (*Fig10Result, error) {
	s, _, err := slowdownSeries(workload.MemoryIntensive(), persist.BaselineDefault(),
		[]persist.Config{persist.PPADefault(), persist.EADRDefault()},
		[]string{"PPA", "eADR/BBB"}, insts, nil)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{PPA: s[0], PSP: s[1]}, nil
}

// Fig11 reproduces Figure 11: PPA's region-end stall cycles as a
// percentage of execution cycles per application (paper average: 0.21%,
// water-ns/water-sp at 6-8%).
func Fig11(insts int) (Series, error) {
	var jobs []runJob
	profiles := workload.Profiles()
	for _, p := range profiles {
		jobs = append(jobs, runJob{prof: p, scheme: persist.PPADefault(), insts: insts})
	}
	results, err := runAll(jobs)
	if err != nil {
		return Series{}, err
	}
	var vals []AppValue
	for i, p := range profiles {
		vals = append(vals, AppValue{App: p.Name, Suite: p.Suite,
			Value: results[i].RegionEndStallFrac() * 100})
	}
	s := newSeries("region-end stall %", vals)
	// An arithmetic mean matches the paper's "0.21% on average".
	var xs []float64
	for _, v := range vals {
		xs = append(xs, v.Value)
	}
	s.GMean = stats.Mean(xs)
	return s, nil
}

// Fig12 reproduces Figure 12: the increase in rename-stage
// out-of-physical-registers stall cycles of PPA over the baseline, as a
// percentage of execution cycles (paper average: 0.07%).
func Fig12(insts int) (Series, error) {
	profiles := workload.Profiles()
	var jobs []runJob
	for _, p := range profiles {
		jobs = append(jobs, runJob{prof: p, scheme: persist.BaselineDefault(), insts: insts})
		jobs = append(jobs, runJob{prof: p, scheme: persist.PPADefault(), insts: insts})
	}
	results, err := runAll(jobs)
	if err != nil {
		return Series{}, err
	}
	var vals []AppValue
	for i, p := range profiles {
		base := results[2*i].RenameStallFrac()
		ppa := results[2*i+1].RenameStallFrac()
		vals = append(vals, AppValue{App: p.Name, Suite: p.Suite, Value: (ppa - base) * 100})
	}
	s := newSeries("rename stall increase %", vals)
	var xs []float64
	for _, v := range vals {
		xs = append(xs, v.Value)
	}
	s.GMean = stats.Mean(xs)
	return s, nil
}

// Fig13Row is one application's region characteristics.
type Fig13Row struct {
	App    string
	Suite  string
	Stores float64 // mean stores per region
	Others float64 // mean non-store instructions per region
}

// Fig13Result carries Figure 13's data plus the comparison region lengths.
type Fig13Result struct {
	Rows []Fig13Row
	// AvgStores/AvgOthers are the all-app means (paper: 18 and 301).
	AvgStores float64
	AvgOthers float64
	// CapriRegionLen is Capri's fixed region length (paper: 29).
	CapriRegionLen int
	// ReplayCacheRegionLen is ReplayCache's region length (paper: ~12).
	ReplayCacheRegionLen int
}

// Fig13 reproduces Figure 13: the number of stores and other instructions
// per dynamically formed PPA region.
func Fig13(insts int) (*Fig13Result, error) {
	profiles := workload.Profiles()
	var jobs []runJob
	for _, p := range profiles {
		jobs = append(jobs, runJob{prof: p, scheme: persist.PPADefault(), insts: insts})
	}
	results, err := runAll(jobs)
	if err != nil {
		return nil, err
	}
	out := &Fig13Result{
		CapriRegionLen:       persist.CapriDefault().FixedRegionLen,
		ReplayCacheRegionLen: persist.ReplayCacheDefault().FixedRegionLen,
	}
	var st, ot []float64
	for i, p := range profiles {
		stores := results[i].AvgRegionStores()
		others := results[i].AvgRegionLen() - stores
		out.Rows = append(out.Rows, Fig13Row{App: p.Name, Suite: p.Suite, Stores: stores, Others: others})
		st = append(st, stores)
		ot = append(ot, others)
	}
	out.AvgStores = stats.Mean(st)
	out.AvgOthers = stats.Mean(ot)
	return out, nil
}

// CDFSeries is one suite's empirical CDF of free physical registers.
type CDFSeries struct {
	Suite  string
	Points []stats.CDFPoint
}

// Fig05Result carries Figure 5's per-suite CDFs of free integer and
// floating-point registers sampled every cycle at the rename stage.
type Fig05Result struct {
	Int []CDFSeries
	FP  []CDFSeries
}

// Fig05 reproduces Figure 5. The baseline core is sampled, as in the paper.
func Fig05(insts int) (*Fig05Result, error) {
	profiles := workload.Profiles()
	var jobs []runJob
	for _, p := range profiles {
		jobs = append(jobs, runJob{prof: p, scheme: persist.BaselineDefault(), insts: insts, sample: true})
	}
	results, err := runAll(jobs)
	if err != nil {
		return nil, err
	}
	intAgg := map[string]*stats.CDF{}
	fpAgg := map[string]*stats.CDF{}
	for i, p := range profiles {
		for _, st := range results[i].PerCore {
			if st.FreeInt == nil {
				continue
			}
			mergeCDF(intAgg, p.Suite, st.FreeInt)
			mergeCDF(fpAgg, p.Suite, st.FreeFP)
		}
	}
	out := &Fig05Result{}
	for _, suite := range workload.Suites() {
		if c := intAgg[suite]; c != nil {
			out.Int = append(out.Int, CDFSeries{Suite: suite, Points: c.Points()})
		}
		if c := fpAgg[suite]; c != nil {
			out.FP = append(out.FP, CDFSeries{Suite: suite, Points: c.Points()})
		}
	}
	return out, nil
}

// mergeCDF accumulates src's samples into the suite's aggregate CDF.
func mergeCDF(agg map[string]*stats.CDF, suite string, src *stats.CDF) {
	dst := agg[suite]
	if dst == nil {
		dst = stats.NewCDF()
		agg[suite] = dst
	}
	prev := uint64(0)
	for _, p := range src.Points() {
		cum := uint64(p.P*float64(src.Total()) + 0.5)
		dst.AddN(p.Value, cum-prev)
		prev = cum
	}
}

// SortByApp orders values in canonical suite order (they already are, but
// external callers composing series may need it).
func SortByApp(vals []AppValue) {
	order := map[string]int{}
	for i, name := range Apps() {
		order[name] = i
	}
	sort.SliceStable(vals, func(i, j int) bool { return order[vals[i].App] < order[vals[j].App] })
}

// SuiteStat is a per-suite aggregate of a series.
type SuiteStat struct {
	Suite string
	GMean float64
	N     int
}

// SuiteGMeans returns the series' geometric mean per benchmark suite, in
// the paper's suite order — the grouping every evaluation figure uses.
func (s Series) SuiteGMeans() []SuiteStat {
	bySuite := map[string][]float64{}
	for _, v := range s.Values {
		bySuite[v.Suite] = append(bySuite[v.Suite], v.Value)
	}
	var out []SuiteStat
	for _, suite := range workload.Suites() {
		xs, ok := bySuite[suite]
		if !ok {
			continue
		}
		out = append(out, SuiteStat{Suite: suite, GMean: stats.GeoMean(xs), N: len(xs)})
		delete(bySuite, suite)
	}
	// Any non-standard suites (custom profiles) follow.
	for suite, xs := range bySuite {
		out = append(out, SuiteStat{Suite: suite, GMean: stats.GeoMean(xs), N: len(xs)})
	}
	return out
}
