package ppa

import (
	"reflect"
	"testing"
)

// TestShrinkCandidatesPreserveSeededness walks the full shrink lattice from
// seeded torture points and asserts no reachable candidate carries the
// Seed==0 "unseeded" sentinel: halving seed 1 (or a negative seed rounding
// toward zero, like -3 -> -1 -> 0) used to collapse onto 0, making the
// shrunk point replay under a different fault stream than the failure being
// minimized. Seeds 1, 2, and -3 cover the one-step, two-step, and negative
// collapse paths.
func TestShrinkCandidatesPreserveSeededness(t *testing.T) {
	for _, seed := range []int64{1, 2, -3} {
		start := TorturePoint{
			Cycle: 500,
			Fault: Fault{Kind: FaultBitFlip, Param: 8, Seed: seed},
			Depth: 2,
		}
		seen := map[string]bool{}
		frontier := []TorturePoint{start}
		for len(frontier) > 0 {
			p := frontier[0]
			frontier = frontier[1:]
			for _, c := range shrinkCandidates(p, 200) {
				if p.Fault.Seed != 0 && c.Fault.Seed == 0 {
					t.Fatalf("seed %d: shrink of %v produced unseeded candidate %v", seed, p, c)
				}
				key := c.String()
				if !seen[key] {
					seen[key] = true
					frontier = append(frontier, c)
				}
			}
		}
		if len(seen) == 0 {
			t.Fatalf("seed %d: shrink lattice from %v is empty", seed, start)
		}
	}
}

// TestShrinkCandidatesDeterministic: candidate generation must be a pure
// function of the point, so a shrink session replays identically.
func TestShrinkCandidatesDeterministic(t *testing.T) {
	p := TorturePoint{Cycle: 4000, Fault: Fault{Kind: FaultBitFlip, Param: 100, Seed: -3}, Depth: 3}
	a := shrinkCandidates(p, 200)
	b := shrinkCandidates(p, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shrink candidates differ across calls:\n%v\n%v", a, b)
	}
}

// TestTorturePointsChecked: the checked generator must reject an empty
// cycle range loudly while the clamping generator keeps its lenient
// harness behavior.
func TestTorturePointsChecked(t *testing.T) {
	if _, err := TorturePointsChecked(1, 10, 100, 0); err == nil {
		t.Fatal("empty range [100, 0) accepted")
	}
	if _, err := TorturePointsChecked(1, 10, 100, 100); err == nil {
		t.Fatal("empty range [100, 100) accepted")
	}
	pts, err := TorturePointsChecked(1, 10, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	if got := TorturePoints(1, 10, 100, 200); !reflect.DeepEqual(pts, got) {
		t.Fatal("checked and clamping generators disagree on a valid range")
	}
}
