package ppa

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSON machine configuration: every knob of the simulated machine (Table 2
// and beyond) can be captured in, or overridden from, a JSON document.
// Unmarshalling applies on top of the defaults, so a config file needs to
// mention only the fields it changes:
//
//	{"NVM": {"WPQEntries": 8}, "Pipeline": {"ROBSize": 128}}

// MarshalMachineConfig renders a machine configuration as indented JSON.
func MarshalMachineConfig(cfg *MachineConfig) ([]byte, error) {
	return json.MarshalIndent(cfg, "", "  ")
}

// MachineCustomizer parses a JSON override document and returns a
// Customize hook that applies it on top of whatever defaults the run
// assembles.
func MachineCustomizer(data []byte) (func(*MachineConfig), error) {
	// Validate the document eagerly so errors surface at load time.
	var probe MachineConfig
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("ppa: bad machine config: %w", err)
	}
	return func(cfg *MachineConfig) {
		// Unmarshal onto the assembled defaults: absent fields keep them.
		_ = json.Unmarshal(data, cfg)
	}, nil
}

// MachineCustomizerFromFile loads a JSON override document from disk.
func MachineCustomizerFromFile(path string) (func(*MachineConfig), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return MachineCustomizer(data)
}

// DefaultMachineConfigJSON returns the fully assembled Table 2 machine for
// n cores under a scheme as JSON — a template for override files.
func DefaultMachineConfigJSON(n int, scheme Scheme) ([]byte, error) {
	sch, err := SchemeConfig(scheme)
	if err != nil {
		return nil, err
	}
	cfg := defaultMachine(n, sch)
	return MarshalMachineConfig(&cfg)
}
