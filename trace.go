package ppa

import (
	"fmt"
	"io"

	"ppa/internal/cache"
	"ppa/internal/inorder"
	"ppa/internal/isa"
	"ppa/internal/nvm"
	"ppa/internal/persist"
	"ppa/internal/workload"
)

// Program re-exports the dynamic-trace type for trace I/O users.
type Program = isa.Program

// ExportTrace writes the named application's thread-tid dynamic trace in
// the binary trace format (a 32-byte record per instruction), so traces can
// be archived, diffed, or consumed by external tools.
func ExportTrace(w io.Writer, app string, insts, tid int) error {
	prof, err := workload.ByName(app)
	if err != nil {
		return err
	}
	if insts <= 0 {
		insts = DefaultInsts
	}
	threads := prof.Threads
	if threads < 1 {
		threads = 1
	}
	if tid < 0 || tid >= threads {
		return fmt.Errorf("ppa: %s has threads 0..%d, not %d", app, threads-1, tid)
	}
	return isa.EncodeProgram(w, workload.GenerateThread(prof, insts, tid))
}

// ImportTrace reads a binary trace.
func ImportTrace(r io.Reader) (*Program, error) { return isa.DecodeProgram(r) }

// InOrderResult summarizes a run of the Section 6 in-order core variant.
type InOrderResult struct {
	Cycles  uint64
	Insts   uint64
	IPC     float64
	Regions uint64
	// Slowdown is the persistent run's cycles over the baseline run's.
	Slowdown float64
}

// RunInOrder runs one single-threaded application on the dual-issue
// in-order core, under the baseline and the value-CSQ PPA variant, and
// reports the persistence overhead (Section 6's in-order extension).
func RunInOrder(app string, insts int) (*InOrderResult, error) {
	if insts <= 0 {
		insts = DefaultInsts
	}
	prof, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	prog := workload.GenerateThread(prof, insts, 0)

	run := func(scheme persist.Config) (*inorder.Stats, error) {
		dev := nvm.NewDevice(nvm.DefaultConfig())
		hier := cache.New(cache.DefaultParams(1), dev, workload.WarmResident, workload.L2Resident)
		core, err := inorder.New(inorder.DefaultConfig(scheme), prog, hier)
		if err != nil {
			return nil, err
		}
		limit := uint64(insts)*4000 + 1_000_000
		for cyc := uint64(0); !core.Done(); cyc++ {
			if cyc >= limit {
				return nil, fmt.Errorf("ppa: in-order run exceeded %d cycles", limit)
			}
			if err := hier.Tick(cyc); err != nil {
				return nil, err
			}
			core.Step(cyc)
		}
		return core.Stats(), nil
	}

	base, err := run(persist.BaselineDefault())
	if err != nil {
		return nil, err
	}
	st, err := run(inorder.PPAScheme())
	if err != nil {
		return nil, err
	}
	return &InOrderResult{
		Cycles:   st.Cycles,
		Insts:    st.Insts,
		IPC:      st.IPC(),
		Regions:  st.Regions,
		Slowdown: float64(st.Cycles) / float64(base.Cycles),
	}, nil
}
