package ppa

import "testing"

// TestCrashRecoverySmoke is the first end-to-end check of the
// checkpoint/recovery path: crash PPA mid-run, recover, verify the
// crash-consistency contract, and resume to completion.
func TestCrashRecoverySmoke(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "mcf", Scheme: SchemePPA, InstsPerThread: 20000}, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Fatal("expected the failure to interrupt the run")
	}
	if !out.Consistent {
		t.Fatalf("PPA recovery left %d inconsistencies", out.Inconsistencies)
	}
	if !out.ArchConsistent {
		t.Fatal("recovered register state diverged from golden")
	}
	if out.ResumedResult == nil {
		t.Fatal("no resumed result")
	}
	t.Logf("checkpoint bytes=%d, replayed=%d words, resumed cycles=%d",
		out.CheckpointBytes, out.PerCore[0].ReplayedWords, out.ResumedResult.Cycles)
}

// TestBaselineIsInconsistent demonstrates the negative: the memory-mode
// baseline loses committed stores across a power failure.
func TestBaselineIsInconsistent(t *testing.T) {
	out, err := RunWithFailure(RunConfig{App: "mcf", Scheme: SchemeBaseline, InstsPerThread: 20000}, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletedBeforeFailure {
		t.Fatal("expected the failure to interrupt the run")
	}
	if out.Consistent {
		t.Fatal("baseline should NOT be crash consistent")
	}
	t.Logf("baseline lost %d committed words", out.Inconsistencies)
}
